"""Calibrating analytic cost models against the host machine.

The workloads' default cost constants are hand-calibrated to land in the
paper's regimes; for users who want virtual times anchored to *their*
hardware's real per-element speeds, this module measures the actual
kernels (the union-find sweep, the boundary join, the raycaster, the NCC
search) on small inputs and returns fitted cost-parameter objects.

Measurements use best-of-N wall times on synthetic inputs sized large
enough to dominate interpreter overhead but small enough to finish in
milliseconds.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np


def measure_rate(fn: Callable[[], None], units: float, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall seconds of ``fn`` divided by ``units``.

    Raises:
        ValueError: for non-positive ``units`` or ``repeats``.
    """
    if units <= 0:
        raise ValueError(f"units must be positive, got {units}")
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best / units


def profile_cost_model(events):
    """Cost model replaying a measured run's per-task compute seconds.

    ``events`` is a buffered event stream — typically a
    :class:`~repro.obs.ListSink`'s ``events`` from a
    :class:`~repro.runtimes.LocalPoolController` run on real cores — or
    an already-built :class:`~repro.sched.ProfiledEstimate`.  The
    returned :class:`~repro.runtimes.costs.CallableCost` charges each
    task its measured ``task_finished`` duration, so any simulated
    controller replays the real run's compute profile and its virtual
    makespan becomes a prediction of measured wall time.  This closes
    the loop in the other direction from the ``calibrate_*`` kernels:
    instead of fitting analytic constants, the whole trace becomes the
    model (the ``local_calibration`` perf benchmark reports how close
    the prediction lands).
    """
    from repro.runtimes.costs import CallableCost
    from repro.sched.estimate import ProfiledEstimate

    profile = (
        events
        if isinstance(events, ProfiledEstimate)
        else ProfiledEstimate.from_events(events)
    )
    return CallableCost(lambda task, inputs: profile.compute_seconds(task))


def calibrate_merge_tree(block_side: int = 24, seed: int = 0):
    """Measure the merge-tree kernels; returns
    :class:`~repro.analysis.mergetree.MergeTreeCostParams`."""
    from repro.analysis.mergetree import (
        BlockDecomposition,
        MergeTreeCostParams,
        extract_boundary,
        join_components,
        segment_block,
    )

    rng = np.random.default_rng(seed)
    shape = (block_side, block_side, block_side)
    field = rng.random((2 * block_side, block_side, block_side))
    dec = BlockDecomposition(field.shape, (2, 1, 1))
    blocks = [dec.extract_block(field, b) for b in range(2)]
    gids = [dec.gids_array(dec.block_bounds(b)) for b in range(2)]

    v = float(np.prod(shape))
    sweep_rate = measure_rate(
        lambda: segment_block(blocks[0], gids[0], 0.0),
        units=v * np.log2(v),
    )
    labels = [segment_block(blocks[b], gids[b], 0.5) for b in range(2)]
    parts = [
        extract_boundary(dec, b, labels[b], blocks[b]) for b in range(2)
    ]
    nb = max(1, sum(p.n_voxels for p in parts))
    join_rate = measure_rate(
        lambda: join_components(parts, dec, {0, 1}), units=nb
    )
    active = max(1, int((blocks[0] >= 0.5).sum()))
    correction_rate = measure_rate(
        lambda: np.unique(labels[0], return_inverse=True), units=active
    )
    return MergeTreeCostParams(
        touch_per_voxel=sweep_rate * 0.1,
        sweep_per_voxel=sweep_rate,
        join_per_boundary_voxel=join_rate,
        correction_per_voxel=correction_rate,
        segmentation_per_voxel=correction_rate,
    )


def calibrate_rendering(block_side: int = 24, image_side: int = 48, seed: int = 0):
    """Measure the raycaster and compositor; returns
    :class:`~repro.analysis.rendering.RenderingCostParams`."""
    from repro.analysis.rendering import (
        ImageFragment,
        OrthoCamera,
        RenderingCostParams,
        fire,
        over,
        render_volume,
    )

    rng = np.random.default_rng(seed)
    field = rng.random((block_side, block_side, block_side))
    cam = OrthoCamera((image_side, image_side))
    tf = fire(0, 1)
    samples = float(image_side * image_side * block_side)
    render_rate = measure_rate(
        lambda: render_volume(field, cam, tf), units=samples
    )
    a = ImageFragment(
        rng.random((image_side, image_side, 4)).astype(np.float32),
        rng.random((image_side, image_side)).astype(np.float32),
    )
    b = ImageFragment(
        rng.random((image_side, image_side, 4)).astype(np.float32),
        rng.random((image_side, image_side)).astype(np.float32),
    )
    composite_rate = measure_rate(
        lambda: over(a, b), units=float(image_side * image_side)
    )
    return RenderingCostParams(
        render_per_sample=render_rate,
        composite_per_pixel=composite_rate,
        write_per_pixel=composite_rate * 0.5,
    )


def calibrate_registration(window=(8, 24, 24), max_shift: int = 3, seed: int = 0):
    """Measure the NCC search; returns
    :class:`~repro.analysis.registration.RegistrationCostParams`."""
    from repro.analysis.registration import (
        RegistrationCostParams,
        ncc_shift,
    )

    rng = np.random.default_rng(seed)
    a = rng.random(window)
    b = rng.random(window)
    voxels = float(np.prod(window))
    # The dense search costs ~ (2w+1)^3 passes over the window; express
    # the fitted rate per (voxel * log2(voxel)) to match the FFT-flavored
    # analytic model used by the workload.
    rate = measure_rate(
        lambda: ncc_shift(a, b, max_shift), units=voxels * np.log2(voxels)
    )
    copy_rate = measure_rate(
        lambda: np.ascontiguousarray(a), units=voxels, repeats=5
    )
    return RegistrationCostParams(
        extract_per_voxel=copy_rate,
        fft_per_voxel=rate,
    )
