"""Shared machinery of the simulator-backed controllers.

Every distributed backend (MPI, Charm++, Legion SPMD, Legion index-launch)
follows the same physical-task life cycle:

1. a logical task is materialized lazily on the proc that owns it;
2. payloads *deposit* into its input slots (initial inputs at time zero,
   dataflow messages on delivery);
3. when the last slot fills, the task becomes *ready* and enters its
   proc's run queue (backends may interpose extra steps, e.g. Legion's
   launcher);
4. a free core *dispatches* it: the callback runs for real, the configured
   :class:`~repro.runtimes.costs.CostModel` converts it to virtual
   seconds, and the core is occupied for overhead + compute;
5. on (virtual) completion its outputs are *routed*: sink channels are
   collected into the result, dataflow channels are serialized / shipped /
   deserialized according to the backend's cost hooks.

:class:`SimController` implements this cycle once; the concrete backends
override the placement and cost hooks.  All scheduling decisions are
deterministic — FIFO queues, ``(time, seq)``-ordered events — so a given
(graph, inputs, backend, parameters) tuple always produces the same
results *and* the same virtual timings.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from typing import TYPE_CHECKING, Sequence

from repro.core.callbacks import CallbackRegistry
from repro.core.errors import ControllerError, FaultError, SimulationError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, TaskId
from repro.core.payload import Payload
from repro.core.task import Task
from repro.faults.plan import FaultPlan
from repro.faults.policy import DEFAULT_RETRY_POLICY, RetryPolicy, legacy_policy
from repro.obs.events import (
    FAULT_INJECTED,
    OVERHEAD,
    PLAN_FALLBACK,
    RANK_DEAD,
    RUN_FINISHED,
    RUN_STARTED,
    SCHED_MIGRATED,
    SCHED_PLANNED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_MIGRATED,
    TASK_RETRY,
    TASK_STARTED,
    Event,
    EventSink,
)
from repro.obs.hub import ObsHub
from repro.obs.live import LiveConfig, attach_live
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import FlightRecorder, TelemetryConfig
from repro.runtimes.controller import Controller
from repro.runtimes.costs import DEFAULT_COSTS, CostModel, NullCost, RuntimeCosts
from repro.runtimes.result import RunResult
from repro.sim.cluster import Cluster
from repro.sim.engine import Engine
from repro.sim.machine import SHAHEEN_II, MachineSpec
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.sched imports us)
    from repro.sched.balance import Balancer
    from repro.sched.compile import CompiledPlan


def _task_label(tid: TaskId, suffix: str = "") -> str:
    """Task-attempt label; only built when a sink observes the run."""
    return f"t{tid}{suffix}"


#: Causal-parent accumulator; only called when a context-requesting sink
#: observes the run (poisoned by tests/test_obs_overhead.py).
_parent_list = list


class _PhysicalTask:
    """Runtime state of one task instance."""

    __slots__ = (
        "task", "slots", "remaining", "cursor", "queued", "slot_map",
        "attempt", "attempts", "arrived", "enq_t",
    )

    def __init__(self, task: Task) -> None:
        self.task = task
        # Last enqueue timestamp; only written on telemetry-enabled runs
        # (feeds the queue-wait sketch in _start_task).
        self.enq_t = 0.0
        n = task.n_inputs
        self.slots: list[Payload | None] = [None] * n
        self.remaining = n
        self.attempts = 0  # failed attempts so far (retry-budget input)
        # Producer task id of each deposited payload, in arrival order.
        # Allocated lazily, and only when span context is requested.
        self.arrived: list[TaskId] | None = None
        # Next slot to fill per producer id (EXTERNAL included), so
        # multiple channels between the same pair fill slots in order.
        self.cursor: dict[TaskId, int] = {}
        self.queued = False  # guards double enqueue
        # producer id -> slot indices, built in one pass over the inputs
        # (the per-producer Task.input_slots_from scan is O(n_inputs)
        # per producer and this is the message hot path).
        slot_map: dict[TaskId, list[int]] = {}
        for i, src in enumerate(task.incoming):
            lst = slot_map.get(src)
            if lst is None:
                slot_map[src] = [i]
            else:
                lst.append(i)
        self.slot_map = slot_map
        # (outputs, compute, overhead) of the first dispatch; reused by
        # fault retries so inputs can be released at first dispatch.
        self.attempt: tuple[list[Payload], float, float] | None = None

    @classmethod
    def from_template(
        cls,
        task: Task,
        n_inputs: int,
        slot_map: dict[TaskId, list[int]],
    ) -> "_PhysicalTask":
        """Stamp a physical task from a compiled plan's template.

        Field-for-field identical to ``__init__`` but skips re-deriving
        ``n_inputs`` and the slot map — the plan computed them once and
        the dict is shared read-only across runs.
        """
        pt = cls.__new__(cls)
        pt.task = task
        pt.enq_t = 0.0
        pt.slots = [None] * n_inputs
        pt.remaining = n_inputs
        pt.attempts = 0
        pt.arrived = None
        pt.cursor = {}
        pt.queued = False
        pt.slot_map = slot_map
        pt.attempt = None
        return pt


class SimController(Controller):
    """Base class of the simulator-backed backends.

    Args:
        n_procs: number of simulated processes (ranks / PEs / shards).
        machine: hardware model; defaults to the Shaheen II-flavoured
            :data:`~repro.sim.machine.SHAHEEN_II`.
        cores_per_proc: compute servers per proc (the MPI controller's
            thread pool size; 1 means a proc is one core).
        cost_model: virtual compute-cost model; defaults to
            :class:`~repro.runtimes.costs.NullCost`.
        costs: runtime overhead constants.
        collect_trace: keep a full span trace on the result (debugging).
        procs_per_node: how many procs share a node; defaults to
            ``cores_per_node // cores_per_proc``.
        faults: **deprecated** transient-fault shim (emits a
            ``DeprecationWarning``): ``{task_id: n}`` makes the first
            ``n`` attempts of that task fail after consuming their full
            compute time; the controller then re-executes it — safe
            because tasks are idempotent by contract (the property the
            paper leans on).  Use the bit-exact replacement
            ``fault_plan=FaultPlan(task_faults=faults)`` with
            :func:`~repro.faults.policy.legacy_policy`.  Wasted attempt
            time lands in the ``wasted`` stats category.
        fault_retry_delay: **deprecated** shim (emits a
            ``DeprecationWarning``): virtual seconds between a failed
            attempt and the re-enqueue; use
            ``retry_policy=legacy_policy(delay)`` instead.
        fault_plan: full fault schedule (transient task faults, permanent
            rank deaths, link degradation/drops) — see
            :mod:`repro.faults`.  A plan is consumed *per run*: each
            ``run()`` materializes a fresh budget from the immutable
            plan, so running twice injects the same faults twice.
            Mutually exclusive with ``faults``.
        retry_policy: reaction to failed attempts and dropped messages
            (backoff, attempt budget, timeout detection); defaults to
            :data:`~repro.faults.policy.DEFAULT_RETRY_POLICY` when a
            plan is installed.
        balancer: dynamic load-balancing strategy (see
            :mod:`repro.sched.balance`); ``None`` keeps the backend's
            default (static placement everywhere except Charm++, whose
            built-in periodic balancer stays on).
        sinks: observability sinks receiving the run's structured
            lifecycle events (see :mod:`repro.obs.events`); equivalent to
            calling :meth:`~repro.runtimes.controller.Controller.add_sink`.
        telemetry: bounded-memory telemetry (see
            :mod:`repro.obs.telemetry`).  ``True`` or a
            :class:`~repro.obs.telemetry.TelemetryConfig` feeds
            streaming quantile sketches — task compute, queue wait,
            message latency — into ``RunResult.metrics.sketches``
            without retaining events, and (when ``flight_dir`` is set)
            attaches a flight recorder that dumps the recent event ring
            on faults, trigger conditions, or exceptions.  Default off:
            clean runs allocate no telemetry objects and their metric
            snapshots / event streams are bit-identical.
        compile: opt into the ahead-of-time run plan (see
            :mod:`repro.sched.compile`): static-placement backends lower
            the (graph, task map, machine) into a cached
            :class:`~repro.sched.compile.CompiledPlan` — preallocated
            physical-task templates, placement table, replayed initial
            deposits — reused across runs via the process-wide
            :data:`~repro.sched.compile.PLAN_CACHE`.  Results are
            bit-identical to the interpreted path.  Runs that need
            dynamic behavior (``fault_plan=``, ``balancer=``,
            ``telemetry=``, or a dynamic-placement backend) fall back
            automatically, emitting a ``plan.fallback`` event when
            observed.
    """

    #: True on backends whose placement is a static task map the compiled
    #: plan can prefill (MPI-style ``_shard_cache``); dynamic-placement
    #: backends (Charm++, Legion index-launch) keep it False and always
    #: fall back.
    _compiled_placement = False

    def __init__(
        self,
        n_procs: int,
        machine: MachineSpec = SHAHEEN_II,
        cores_per_proc: int = 1,
        cost_model: CostModel | None = None,
        costs: RuntimeCosts = DEFAULT_COSTS,
        collect_trace: bool = False,
        procs_per_node: int | None = None,
        faults: dict[TaskId, int] | None = None,
        fault_retry_delay: float = 0.0,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        balancer: "Balancer | None" = None,
        sinks: Sequence[EventSink] = (),
        telemetry: "TelemetryConfig | bool | dict | None" = None,
        live: "LiveConfig | bool | str | dict | None" = None,
        compile: bool = False,
    ) -> None:
        super().__init__()
        self._sinks.extend(sinks)
        self.telemetry = TelemetryConfig.coerce(telemetry)
        # In-flight observability (repro.obs.live); coerced per run by
        # attach_live so $REPRO_LIVE_DIR can arm it too.  Virtual-time
        # runs replay through the same bus with virtual timestamps.
        self.live = live
        if n_procs <= 0:
            raise ControllerError(f"n_procs must be positive, got {n_procs}")
        self.n_procs = n_procs
        self.machine = machine
        self.cores_per_proc = cores_per_proc
        self.cost_model = cost_model if cost_model is not None else NullCost()
        self.costs = costs
        self.collect_trace = collect_trace
        self.procs_per_node = procs_per_node
        self.faults = dict(faults) if faults else {}
        self.fault_retry_delay = fault_retry_delay
        if faults is not None or fault_retry_delay != 0.0:
            warnings.warn(
                "the faults=/fault_retry_delay= kwargs are deprecated; use "
                "fault_plan=FaultPlan(task_faults=...) with "
                "retry_policy=legacy_policy(delay) for bit-exact semantics",
                DeprecationWarning,
                stacklevel=2,
            )
        if faults and fault_plan is not None:
            raise ControllerError(
                "pass either the legacy faults= dict or fault_plan=, not both"
            )
        if faults:
            # Compatibility shim: the legacy kwargs become a plan plus the
            # flat-delay/unlimited-attempts policy they always implied.
            fault_plan = FaultPlan(task_faults=self.faults)
            if retry_policy is None:
                retry_policy = legacy_policy(fault_retry_delay)
        if fault_plan is not None:
            fault_plan.validate(n_procs)
            if retry_policy is None:
                retry_policy = DEFAULT_RETRY_POLICY
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.balancer = balancer
        self.compile = compile
        # True when the balancer is the backend's own default (Charm++):
        # the backend then keeps its legacy counters/events and the
        # generic scheduler metrics stay out of clean-run snapshots.
        self._balancer_builtin = False
        #: failed attempts observed in the last run.
        self.retries = 0
        # Per-run state; created in _execute.
        self._engine: Engine
        self._cluster: Cluster
        self._result: RunResult
        self._registry_run: CallbackRegistry
        self._graph_run: TaskGraph
        self._ptasks: dict[TaskId, _PhysicalTask]
        self._ready: list[deque[TaskId]]
        self._busy: list[int]
        self._executed: int
        self._total: int
        self._finish_time: float

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #

    def _proc_of(self, tid: TaskId) -> int:
        """Proc currently owning task ``tid``."""
        raise NotImplementedError

    def _prepare_run(self) -> None:
        """Called once per run before initial inputs are deposited."""

    def _install_compiled_placement(self, plan: "CompiledPlan") -> None:
        """Prefill the backend's placement state from a compiled plan.

        Only called on backends with ``_compiled_placement = True``,
        after :meth:`_prepare_run`.
        """
        raise NotImplementedError  # pragma: no cover - backends override

    # ------------------------------------------------------------------ #
    # Compiled fast path (opt-in via compile=True)
    # ------------------------------------------------------------------ #

    def _compile_blocker(self) -> str | None:
        """Why this run cannot take the compiled fast path (or ``None``).

        The compiled plan assumes a fully static run: any source of
        dynamic behavior — fault injection, a balancer (including
        Charm++'s built-in one), telemetry instrumentation, or a backend
        whose placement is not a static task map — forces the
        interpreted path.
        """
        if not type(self)._compiled_placement or self._task_map is None:
            return "backend"
        if self.fault_plan is not None:
            return "faults"
        if self.balancer is not None:
            return "balancer"
        if self.telemetry is not None:
            return "telemetry"
        return None

    def _resolve_compiled_plan(
        self, graph: TaskGraph
    ) -> tuple["CompiledPlan | None", str | None]:
        """The run's compiled plan (cached or freshly lowered), or the
        fallback reason."""
        reason = self._compile_blocker()
        if reason is not None:
            return None, reason
        from repro.sched.compile import (
            PLAN_CACHE,
            compile_plan,
            run_plan_key,
        )

        ppn = self.procs_per_node
        if ppn is None:
            ppn = max(1, self.machine.cores_per_node // self.cores_per_proc)
        key = run_plan_key(
            graph, self._task_map, self.machine, self.n_procs, ppn
        )
        plan = PLAN_CACHE.get(key)
        if plan is None:
            plan = compile_plan(
                graph,
                self._task_map,
                self.machine,
                self.costs,
                procs_per_node=ppn,
                cores_per_proc=self.cores_per_proc,
            )
            PLAN_CACHE.put(key, plan)
        return plan, None

    def _on_ready(self, tid: TaskId) -> None:
        """A task's inputs are complete; default: enqueue on its proc."""
        self._enqueue(self._proc_of(tid), tid)

    def _on_task_done(self, proc: int, tid: TaskId) -> None:
        """Called after a task completed and its outputs were routed."""

    def _pre_compute_overhead(self, proc: int, tid: TaskId) -> float:
        """Per-task overhead charged on the core before compute."""
        return self.costs.dispatch_overhead

    def _pre_compute_category(self) -> str:
        """Stats category of :meth:`_pre_compute_overhead`."""
        return "dispatch"

    def _serialize_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        """Sender-side cost to put a payload on the wire."""
        return 0.0

    def _receive_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        """Receiver-side cost to take a payload off the wire."""
        return 0.0

    def _comm_category(self) -> str:
        """Stats category of de-/serialization costs."""
        return "serialize"

    # ------------------------------------------------------------------ #
    # Execution skeleton
    # ------------------------------------------------------------------ #

    def _execute(
        self,
        graph: TaskGraph,
        registry: CallbackRegistry,
        inputs: dict[TaskId, list[Payload]],
    ) -> RunResult:
        self._engine = Engine()
        sinks = list(self._sinks)
        trace = None
        if self.collect_trace:
            # Span tracing is an event sink like any other consumer.
            trace = Trace()
            sinks.append(trace)
        metrics = self._metrics = MetricsRegistry()
        # Telemetry is strictly opt-in: on the default path no sketch,
        # ring buffer, or trigger object is ever constructed (enforced
        # by tests/test_obs_overhead.py) and the metric snapshot keeps
        # its exact historical shape.
        tel = self.telemetry
        self._tel_flight = None
        if tel is None:
            self._t_task = self._t_queue = None
            msg_sketch = None
        else:
            self._t_task = metrics.sketch("task_seconds", tel.rel_err)
            self._t_queue = metrics.sketch("queue_wait_seconds", tel.rel_err)
            msg_sketch = metrics.sketch("message_seconds", tel.rel_err)
            if tel.flight_dir:
                self._tel_flight = FlightRecorder(
                    tel.flight_dir,
                    capacity=tel.flight_capacity,
                    triggers=tel.triggers,
                    rel_err=tel.rel_err,
                )
                sinks.append(self._tel_flight)
        # The live plane: None on unarmed runs (zero-cost gate).  The
        # writer's clock is left unset, so "now" is the freshest event's
        # virtual timestamp — the only meaningful clock in a simulation.
        live = self._live_run = attach_live(
            self.live,
            total=graph.size(),
            runtime=type(self).__name__,
            n_ranks=self.n_procs,
            graph=graph,
            metrics=metrics,
        )
        hub = ObsHub(sinks, bus=live.bus if live is not None else None)
        # `None` rather than an empty hub when unobserved: the hot-path
        # guards become a C-level identity test instead of calling
        # ObsHub.__bool__ tens of thousands of times per run.
        obs = self._obs = hub if (sinks or live is not None) else None
        # Span-context threading is a second opt-in gate on top of the
        # sink gate: only pay the per-deposit parent tracking when some
        # sink (an exporter, typically) asked for causal context.
        self._ctx = hub.wants_context if sinks else False
        self._m_task_seconds = metrics.histogram("task_compute_seconds")
        self._m_message_bytes = metrics.histogram("message_nbytes")
        self._queue_peak = [0] * self.n_procs
        plan = self.fault_plan
        self._cluster = Cluster(
            self._engine,
            self.machine,
            self.n_procs,
            self.cores_per_proc,
            procs_per_node=self.procs_per_node,
            obs=hub,
            link_faults=plan.link_table() if plan is not None else None,
            retry=self.retry_policy,
            latency_sketch=msg_sketch,
        )
        self._result = RunResult(trace=trace)
        # Per-run hot-path caches: the category hooks return constants
        # for every shipped backend, and binding the stats dicts once
        # turns each accounting call into a plain ``dict[k] += v``.
        self._comm_cat = self._comm_category()
        self._pre_cat = self._pre_compute_category()
        self._cat_time = self._result.stats.category_time
        self._cb_time = self._result.stats.callback_time
        self._needs_wall = self.cost_model.needs_wall_time
        self._graph_run = graph
        self._registry_run = registry
        self._ptasks = {}
        # The plan's budget is materialized fresh per run (per-run
        # consumption semantics; the legacy faults= dict behaved the same).
        self._fault_budget = plan.task_budget() if plan is not None else {}
        self._policy = self.retry_policy
        self._timeout_raw = (
            self._policy.task_timeout * self.machine.core_speed
            if self._policy is not None
            else float("inf")
        )
        self.retries = 0
        self._done: set[TaskId] = set()
        # Rank-death recovery state.  All empty/None on the clean path,
        # so the hot-path guards are single truthiness tests.
        self._dead_procs: set[int] = set()
        self._survivors: list[int] = []
        self._replaying: set[TaskId] = set()
        self._replay_targets: dict[TaskId, set[TaskId]] = {}
        track_deaths = plan is not None and plan.has_rank_deaths
        self._inflight: dict[TaskId, tuple] | None = {} if track_deaths else None
        self._initial_inputs = inputs
        self._initial_deposited = False
        self._faults_injected = 0
        self._tasks_replayed = 0
        self._tasks_migrated = 0
        self._first_fault_time: float | None = None
        self._ready = [deque() for _ in range(self.n_procs)]
        self._busy = [0] * self.n_procs
        self._executed = 0
        self._total = graph.size()
        self._finish_time = 0.0
        self._lb_migrations = 0

        if obs:
            obs.emit(Event(RUN_STARTED, 0.0, label=type(self).__name__))
            tm = self._task_map
            plan_seconds = getattr(tm, "plan_seconds", None)
            if plan_seconds is not None:
                # A planned map (repro.sched.plan) narrates its provenance;
                # plain maps emit nothing (golden streams unchanged).
                obs.emit(
                    Event(
                        SCHED_PLANNED,
                        0.0,
                        dur=getattr(tm, "est_makespan", 0.0),
                        category=getattr(tm, "strategy", "planned"),
                        label=f"planned placement ({tm.strategy})",
                    )
                )
        cplan = None
        if self.compile:
            cplan, fallback = self._resolve_compiled_plan(graph)
            if cplan is None and obs:
                # Narrate the fallback only when compilation was asked
                # for, so clean streams keep their exact shape.
                obs.emit(
                    Event(
                        PLAN_FALLBACK,
                        0.0,
                        category=fallback,
                        label=f"compiled plan unavailable: {fallback}",
                    )
                )
        self._prepare_run()
        bal = self.balancer
        if bal is not None:
            bal.install(self)
        # Bound once per run: the pump loop pays one identity test when no
        # balancer (or a hook-less one) is installed.
        self._idle_hook = bal.on_idle if bal is not None else None
        if plan is not None:
            for death in plan.rank_deaths:
                self._engine.call_at(death.at, self._rank_death, death.proc)
        if cplan is not None:
            # Stamp every physical task from the plan's templates (no
            # per-task slot-map derivation or Task materialization) and
            # hand the backend its placement table.
            ptasks = self._ptasks
            from_template = _PhysicalTask.from_template
            tpl_tasks = cplan.tasks
            tpl_inputs = cplan.n_inputs
            tpl_maps = cplan.slot_maps
            for tid in range(cplan.n):
                ptasks[tid] = from_template(
                    tpl_tasks[tid], tpl_inputs[tid], tpl_maps[tid]
                )
            self._install_compiled_placement(cplan)
        if inputs:
            if cplan is not None:
                # The compiled path replays the deposits through the
                # engine's static-schedule cursor: the whole batch
                # reserves its seq block up front, so the relative
                # (time, seq) order — and therefore every downstream
                # event — is identical to the batched event below.
                self._initial_deposited = True
                deposit = self._deposit
                entries = [
                    (0.0, deposit, (tid, EXTERNAL, payload))
                    for tid in cplan.sources
                    for payload in inputs[tid]
                ]
                self._engine.replay(entries)
            else:
                # One batched time-zero event instead of one per source
                # task: the deposits run in the same (sorted) order, so
                # every downstream event keeps its relative (time, seq)
                # position.
                self._engine.call_at(
                    0.0, self._deposit_initial, sorted(inputs.items())
                )
        if self._idle_hook is not None:
            # Scheduled after the initial deposits: procs the task map
            # left without any work would otherwise never be pumped, so
            # an idle-stealing balancer would never see them.
            self._engine.call_at(0.0, self._probe_idle)
        try:
            self._engine.run()
            if len(self._done) != self._total:
                stuck = [
                    t for t, pt in self._ptasks.items() if pt.remaining > 0
                ][:8]
                raise SimulationError(
                    f"{type(self).__name__}: dataflow stalled after "
                    f"{len(self._done)}/{self._total} tasks "
                    f"(waiting tasks include {stuck})"
                )
        except BaseException as exc:
            # The run died mid-stream: the flight recorder's ring holds
            # the moments leading up to the failure — dump it before
            # propagating so the post-mortem survives the crash.
            if self._tel_flight is not None:
                self._tel_flight.abort(exc)
            if live is not None:
                live.close("aborted")
            raise
        stats = self._result.stats
        stats.makespan = self._finish_time
        stats.tasks_executed = self._executed
        stats.messages = self._cluster.messages_sent
        stats.bytes_sent = self._cluster.bytes_sent
        if obs:
            obs.emit(
                Event(
                    RUN_FINISHED,
                    self._finish_time,
                    dur=self._finish_time,
                    label=type(self).__name__,
                )
            )
        self._result.metrics = self._snapshot_metrics()
        if live is not None:
            # After the metric snapshot, so the terminal status file
            # carries the finalized counters/gauges.
            live.close("finished")
        return self._result

    def _snapshot_metrics(self):
        """Finalize counters/gauges and freeze the registry."""
        m = self._metrics
        m.counter("tasks_executed").inc(self._executed)
        m.counter("messages_sent").inc(self._cluster.messages_sent)
        m.counter("bytes_sent").inc(self._cluster.bytes_sent)
        m.counter("retries").inc(self.retries)
        makespan = self._finish_time
        plan_seconds = getattr(self._task_map, "plan_seconds", None)
        if plan_seconds is not None:
            # Scheduler metrics exist only when the feature is opted into,
            # so clean runs keep their exact metric set (and goldens).
            m.gauge("placement_plan_seconds").set(plan_seconds)
        bal = self.balancer
        if bal is not None and not self._balancer_builtin:
            m.counter("lb_rounds").inc(bal.rounds())
            m.counter("tasks_stolen").inc(bal.stolen())
            m.counter("tasks_migrated_lb").inc(self._lb_migrations)
        if self.fault_plan is not None:
            # Fault/recovery metrics exist only when a plan is installed,
            # so clean runs keep their exact metric set (and goldens).
            m.counter("faults_injected").inc(self._faults_injected)
            m.counter("rank_deaths").inc(len(self._dead_procs))
            m.counter("tasks_replayed").inc(self._tasks_replayed)
            m.counter("tasks_migrated").inc(self._tasks_migrated)
            m.counter("messages_dropped").inc(self._cluster.messages_dropped)
            m.counter("messages_retransmitted").inc(
                self._cluster.messages_retransmitted
            )
            first = self._first_fault_time
            drop = self._cluster.first_drop_time
            if drop is not None and (first is None or drop < first):
                first = drop
            if first is not None:
                m.gauge("recovery_tail_seconds").set(
                    max(0.0, makespan - first)
                )
        peaks = self._queue_peak
        m.gauge("queue_depth_peak").set(float(max(peaks, default=0)))
        m.gauge("queue_depth_peak_mean").set(
            sum(peaks) / len(peaks) if peaks else 0.0
        )
        if makespan > 0:
            busy = [
                self._cluster.core_busy_time(p) / (makespan * self.cores_per_proc)
                for p in range(self.n_procs)
            ]
            mean = sum(busy) / len(busy)
            m.gauge("utilization_mean").set(mean)
            m.gauge("utilization_max").set(max(busy))
            m.gauge("utilization_min").set(min(busy))
            if mean > 0:
                m.gauge("imbalance").set(max(busy) / mean)
        return m.snapshot()

    # ------------------------------------------------------------------ #
    # Input deposit
    # ------------------------------------------------------------------ #

    def _ptask(self, tid: TaskId) -> _PhysicalTask:
        pt = self._ptasks.get(tid)
        if pt is None:
            pt = _PhysicalTask(self._graph_run.task(tid))
            self._ptasks[tid] = pt
        return pt

    def _deposit_initial(
        self, items: list[tuple[TaskId, list[Payload]]]
    ) -> None:
        # Flag first: a task rebuilt after a later rank death must know
        # whether its external inputs were already delivered (and lost)
        # or are still on their way in this very batch.
        self._initial_deposited = True
        deposit = self._deposit
        for tid, payloads in items:
            for payload in payloads:
                deposit(tid, EXTERNAL, payload)

    def _deposit_external(self, tid: TaskId, payloads: list[Payload]) -> None:
        for payload in payloads:
            self._deposit(tid, EXTERNAL, payload)

    def _deposit(self, tid: TaskId, producer: TaskId, payload: Payload) -> None:
        if tid in self._done:
            raise SimulationError(
                f"task {tid} received a message from {producer} after it "
                f"already completed (producer sends more messages than "
                f"the consumer has slots)"
            )
        pt = self._ptasks.get(tid)
        if pt is None:
            pt = _PhysicalTask(self._graph_run.task(tid))
            self._ptasks[tid] = pt
        slot_list = pt.slot_map.get(producer)
        idx = pt.cursor.get(producer, 0)
        if slot_list is None or idx >= len(slot_list):
            raise SimulationError(
                f"task {tid} received more messages from {producer} than "
                f"it has slots"
            )
        pt.cursor[producer] = idx + 1
        slot = slot_list[idx]
        pt.slots[slot] = payload
        if self._ctx and producer >= 0:  # is_real_task, inlined
            arr = pt.arrived
            if arr is None:
                arr = pt.arrived = _parent_list()
            arr.append(producer)
        pt.remaining -= 1
        if pt.remaining == 0:
            self._on_ready(tid)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def _enqueue(self, proc: int, tid: TaskId) -> None:
        if self._dead_procs and proc in self._dead_procs:
            return  # stale enqueue onto a dead rank; recovery re-placed it
        pt = self._ptasks.get(tid)
        if pt is None:
            pt = _PhysicalTask(self._graph_run.task(tid))
            self._ptasks[tid] = pt
        if pt.queued:
            raise SimulationError(f"task {tid} enqueued twice")
        pt.queued = True
        ready = self._ready[proc]
        ready.append(tid)
        if len(ready) > self._queue_peak[proc]:
            self._queue_peak[proc] = len(ready)
        if self._t_queue is not None:
            pt.enq_t = self._engine._now
        obs = self._obs
        if obs is not None:
            obs.emit(
                Event(TASK_ENQUEUED, self._engine._now, proc=proc, task=tid)
            )
        self._pump(proc)

    def _pump(self, proc: int) -> None:
        while self._busy[proc] < self.cores_per_proc and self._ready[proc]:
            tid = self._ready[proc].popleft()
            self._start_task(proc, tid)
        hook = self._idle_hook
        if (
            hook is not None
            and not self._ready[proc]
            and self._busy[proc] < self.cores_per_proc
        ):
            # The proc drained its queue with cores to spare: give the
            # balancer (work stealing) a chance to find it more work.
            hook(self, proc)

    def _probe_idle(self) -> None:
        """Pump every proc once so the balancer's idle hook sees procs
        that start the run with an empty queue."""
        for p in range(self.n_procs):
            self._pump(p)

    def _migrate_queued(self, tid: TaskId, src: int, dst: int) -> None:
        """Move a queued (not yet started) task to another proc.

        The caller (a :class:`~repro.sched.balance.Balancer`) already
        removed ``tid`` from ``src``'s ready queue.  The buffered input
        payloads travel as one message and the task re-enters the run
        queue at the destination on arrival.  Backends with richer
        migration semantics (Charm++'s chare migration) override this.
        """
        pt = self._ptasks[tid]
        pt.queued = False
        self._set_placement(tid, dst)
        self._lb_migrations += 1
        nbytes = sum(p.nbytes for p in pt.slots if p is not None)
        obs = self._obs
        if obs is not None:
            obs.emit(
                Event(
                    SCHED_MIGRATED,
                    self._engine._now,
                    proc=src,
                    dst_proc=dst,
                    task=tid,
                    nbytes=nbytes,
                    label=_task_label(tid, f" -> p{dst}"),
                )
            )
        self._cluster.send(
            src,
            dst,
            nbytes,
            self._arrive_balanced,
            dst,
            tid,
            label=_task_label(tid, " balance") if obs else "",
            src_task=tid,
        )

    def _arrive_balanced(self, dst: int, tid: TaskId) -> None:
        if self._dead_procs and dst in self._dead_procs:
            # The destination died while the task was in flight; the
            # death recovery already re-placed and rebuilt it.
            return
        self._enqueue(dst, tid)

    def _start_task(self, proc: int, tid: TaskId) -> None:
        pt = self._ptasks[tid]
        self._busy[proc] += 1
        if self._t_queue is not None:
            self._t_queue.observe(
                max(0.0, self._engine._now - pt.enq_t)
            )
        stash = pt.attempt
        if stash is None:
            task = pt.task
            task_inputs: list[Payload] = pt.slots  # type: ignore[assignment]
            if self._needs_wall:
                t0 = time.perf_counter()
                outputs = self._registry_run.invoke(
                    task.callback, task_inputs, tid, task.n_outputs
                )
                wall = time.perf_counter() - t0
            else:
                outputs = self._registry_run.invoke(
                    task.callback, task_inputs, tid, task.n_outputs
                )
                wall = 0.0
            compute = self.cost_model.duration(task, task_inputs, wall)
            overhead = self._pre_compute_overhead(proc, tid)
            # Inputs are released at the *first* dispatch, failed or not;
            # retries reuse the stashed outputs below (tasks are
            # idempotent by contract), so the buffered payloads need not
            # stay pinned through fault/retry cycles.
            pt.slots = []
            pt.attempt = (outputs, compute, overhead)
        else:
            outputs, compute, overhead = stash
        cat_time = self._cat_time
        self._m_task_seconds.observe(compute)
        if self._t_task is not None:
            self._t_task.observe(compute)
        if self._fault_budget and self._fault_budget.get(tid, 0) > 0:
            # Transient failure: the attempt consumes its full time but
            # its outputs are discarded; the task retries (idempotence).
            self._fault_budget[tid] -= 1
            self.retries += 1
            pt.attempts += 1
            self._faults_injected += 1
            cat_time["wasted"] += overhead + compute
            start, end = self._cluster.compute(
                proc, overhead + compute, self._attempt_failed, proc, tid
            )
            if self._first_fault_time is None:
                self._first_fault_time = start
            if self._inflight is not None:
                self._inflight[tid] = (proc, start, end, compute, overhead, None)
            if self._obs is not None:
                self._obs.emit(
                    Event(
                        FAULT_INJECTED,
                        start,
                        proc=proc,
                        task=tid,
                        category="task",
                        label=_task_label(tid, " fault"),
                    )
                )
                self._emit_task(
                    proc, tid, start, end, overhead, " (failed attempt)"
                )
            return
        if overhead + compute > self._timeout_raw:
            # Timeout detection: the attempt is aborted at the policy's
            # per-task deadline and handled as a fault.  A task whose
            # compute always exceeds the timeout burns its whole attempt
            # budget and raises FaultError in _attempt_failed.
            self.retries += 1
            pt.attempts += 1
            self._faults_injected += 1
            cat_time["wasted"] += self._timeout_raw
            start, end = self._cluster.compute(
                proc, self._timeout_raw, self._attempt_failed, proc, tid
            )
            if self._first_fault_time is None:
                self._first_fault_time = start
            if self._inflight is not None:
                self._inflight[tid] = (
                    proc, start, end, self._timeout_raw, 0.0, None
                )
            if self._obs is not None:
                self._obs.emit(
                    Event(
                        FAULT_INJECTED,
                        start,
                        proc=proc,
                        task=tid,
                        category="timeout",
                        label=_task_label(tid, " timeout"),
                    )
                )
                self._emit_task(
                    proc, tid, start, end, 0.0, " (timed out)"
                )
            return
        cat_time[self._pre_cat] += overhead
        cat_time["compute"] += compute
        self._cb_time[pt.task.callback] += compute
        pt.attempt = None  # drop the output reference once dispatched
        start, end = self._cluster.compute(
            proc, overhead + compute, self._task_done, proc, tid, outputs
        )
        if self._inflight is not None:
            self._inflight[tid] = (
                proc, start, end, compute, overhead, pt.task.callback
            )
        if self._obs is not None:
            self._emit_task(proc, tid, start, end, overhead)

    def _emit_task(
        self,
        proc: int,
        tid: TaskId,
        start: float,
        end: float,
        overhead: float,
        suffix: str = "",
    ) -> None:
        """Emit the overhead / started / finished triple of one attempt.

        ``start``/``end`` are the core occupancy returned by the cluster
        (already scaled by ``core_speed``); the raw ``overhead`` is
        rescaled the same way so the compute interval excludes it.
        """
        obs = self._obs
        if not obs:
            return
        ovh = overhead / self.machine.core_speed
        cstart = min(start + ovh, end)
        label = _task_label(tid, suffix)
        category = "wasted" if suffix else self._pre_cat
        obs.emit(
            Event(OVERHEAD, cstart, proc=proc, task=tid, dur=ovh, category=category)
        )
        if self._ctx:
            # Every attempt starts with a *complete* input multiset (a
            # rebuilt task is fully re-fed before it re-enters a queue),
            # so the parents stamped here are exactly the producers that
            # fed this attempt — the causal edge set of the span.
            arr = self._ptasks[tid].arrived
            obs.emit(
                Event(
                    TASK_STARTED,
                    cstart,
                    proc=proc,
                    task=tid,
                    label=label,
                    parents=tuple(arr) if arr else (),
                )
            )
        else:
            obs.emit(
                Event(TASK_STARTED, cstart, proc=proc, task=tid, label=label)
            )
        obs.emit(
            Event(
                TASK_FINISHED,
                end,
                proc=proc,
                task=tid,
                dur=end - cstart,
                label=label,
            )
        )

    def _attempt_failed(self, proc: int, tid: TaskId) -> None:
        if self._dead_procs and proc in self._dead_procs:
            return  # the rank died under the attempt; recovery re-placed it
        self._busy[proc] -= 1
        if self._inflight is not None:
            self._inflight.pop(tid, None)
        pt = self._ptasks[tid]
        pt.queued = False
        self._pump(proc)
        policy = self._policy
        if not policy.allows_attempt(pt.attempts):
            raise FaultError(
                f"task {tid} failed {pt.attempts} attempts "
                f"(RetryPolicy.max_attempts={policy.max_attempts})"
            )
        delay = policy.delay(tid, pt.attempts)
        target = self._target_proc(tid)
        if self._obs is not None:
            self._obs.emit(
                Event(
                    TASK_RETRY,
                    self._engine._now,
                    proc=target,
                    task=tid,
                    dur=delay,
                    label=_task_label(tid, f" retry #{pt.attempts}"),
                )
            )
        self._engine.call_after(delay, self._enqueue, target, tid)

    def _task_done(self, proc: int, tid: TaskId, outputs: list[Payload]) -> None:
        if self._dead_procs and proc in self._dead_procs:
            return  # the attempt's rank died; recovery replays the task
        self._busy[proc] -= 1
        self._executed += 1
        replay = False
        if self._replaying and tid in self._replaying:
            self._replaying.discard(tid)
            replay = True
        self._done.add(tid)
        if self._inflight is not None:
            self._inflight.pop(tid, None)
        now = self._engine._now
        if now > self._finish_time:
            self._finish_time = now
        self._route_outputs(proc, tid, outputs)
        del self._ptasks[tid]
        self._pump(proc)
        if not replay:
            # Round/barrier bookkeeping already saw the first completion;
            # a lineage replay must not decrement it twice.
            self._on_task_done(proc, tid)

    # ------------------------------------------------------------------ #
    # Output routing
    # ------------------------------------------------------------------ #

    def _route_outputs(
        self, proc: int, tid: TaskId, outputs: list[Payload]
    ) -> None:
        # The physical task is still registered here (it is removed by
        # _task_done right after routing), so reuse its materialization.
        task = self._ptasks[tid].task
        observe = self._m_message_bytes.observe
        send = self._send
        targets = (
            self._replay_targets.pop(tid, None) if self._replay_targets else None
        )
        if targets is not None:
            # Lineage replay: re-feed only the consumers that lost this
            # producer's payloads.  Everyone else already received them
            # (or has them in flight), and the sink outputs were already
            # collected from the first completion.
            for channel, payload in zip(task.outgoing, outputs):
                for dst in channel:
                    if dst >= 0 and dst in targets:
                        observe(payload.nbytes)
                        send(proc, tid, dst, payload)
            return
        for ch, (channel, payload) in enumerate(zip(task.outgoing, outputs)):
            if not channel or TNULL in channel:
                self._result.outputs.setdefault(tid, {})[ch] = payload
            for dst in channel:
                if dst >= 0:  # is_real_task, inlined
                    observe(payload.nbytes)
                    send(proc, tid, dst, payload)

    def _send(
        self, sproc: int, producer: TaskId, dst: TaskId, payload: Payload
    ) -> None:
        dproc = self._proc_of(dst)
        ser = self._serialize_cost(sproc, dproc, payload)
        if ser > 0.0:
            self._cat_time[self._comm_cat] += ser
            # Serialization occupies a sender core before injection.
            start, end = self._cluster.compute(
                sproc, ser, self._inject, sproc, dproc, producer, dst, payload
            )
            obs = self._obs
            if obs is not None:
                obs.emit(
                    Event(
                        OVERHEAD,
                        end,
                        proc=sproc,
                        task=producer,
                        dst_task=dst,
                        dur=end - start,
                        category=self._comm_cat,
                        label=f"ser t{producer}->t{dst}",
                    )
                )
        else:
            self._inject(sproc, dproc, producer, dst, payload)

    def _inject(
        self,
        sproc: int,
        dproc: int,
        producer: TaskId,
        dst: TaskId,
        payload: Payload,
    ) -> None:
        # No explicit label: Cluster derives "t{producer}->t{dst}" lazily
        # from src_task/dst_task, and only when a sink is attached.
        self._cluster.send(
            sproc,
            dproc,
            payload.nbytes,
            self._receive,
            sproc,
            dproc,
            producer,
            dst,
            payload,
            src_task=producer,
            dst_task=dst,
        )

    def _receive(
        self,
        sproc: int,
        dproc: int,
        producer: TaskId,
        dst: TaskId,
        payload: Payload,
    ) -> None:
        if self._dead_procs and dproc in self._dead_procs:
            return  # delivered to a dead rank; the payload is lost
        deser = self._receive_cost(sproc, dproc, payload)
        if deser > 0.0:
            self._cat_time[self._comm_cat] += deser
            if self._inflight is None:
                start, end = self._cluster.compute(
                    dproc, deser, self._deposit, dst, producer, payload
                )
            else:
                # Rank deaths are planned: the deposit at the end of the
                # deserialization must re-check that the proc is alive.
                start, end = self._cluster.compute(
                    dproc, deser, self._deposit_recv, dproc, dst, producer,
                    payload,
                )
            obs = self._obs
            if obs is not None:
                obs.emit(
                    Event(
                        OVERHEAD,
                        end,
                        proc=dproc,
                        task=dst,
                        dur=end - start,
                        category=self._comm_cat,
                        label=f"deser t{producer}->t{dst}",
                    )
                )
        else:
            self._deposit(dst, producer, payload)

    def _deposit_recv(
        self, dproc: int, dst: TaskId, producer: TaskId, payload: Payload
    ) -> None:
        """Post-deserialization deposit that tolerates a mid-flight death."""
        if dproc in self._dead_procs:
            return
        self._deposit(dst, producer, payload)

    # ------------------------------------------------------------------ #
    # Rank-death recovery
    # ------------------------------------------------------------------ #

    def _target_proc(self, tid: TaskId) -> int:
        """Like :meth:`_proc_of` but never resolves to a dead rank."""
        proc = self._proc_of(tid)
        if self._dead_procs and proc in self._dead_procs:
            proc = self._survivor_for(tid)
        return proc

    def _survivor_for(self, tid: TaskId) -> int:
        """Deterministic surviving rank for a re-placed task."""
        survivors = self._survivors
        return survivors[tid % len(survivors)]

    def _set_placement(self, tid: TaskId, proc: int) -> None:
        """Backend hook: pin ``tid``'s placement to ``proc`` (recovery)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support rank-death re-placement"
        )

    def _on_recover(self, tid: TaskId) -> None:
        """Backend hook: purge stale scheduling state of a recovered task."""

    def _on_replay(self, tid: TaskId) -> None:
        """Backend hook: a completed task is about to re-execute."""

    def _replace_task(self, tid: TaskId, new_proc: int) -> None:
        """Move a task off a dead rank onto ``new_proc``."""
        self._set_placement(tid, new_proc)
        self._tasks_migrated += 1
        if self._obs is not None:
            self._obs.emit(
                Event(
                    TASK_MIGRATED,
                    self._engine._now,
                    proc=new_proc,
                    task=tid,
                    label=_task_label(tid, f" -> p{new_proc}"),
                )
            )

    def _rank_death(self, proc: int) -> None:
        """Kill rank ``proc`` permanently and recover everything it owned."""
        if proc in self._dead_procs:
            return
        now = self._engine._now
        self._dead_procs.add(proc)
        self._survivors = [
            p for p in range(self.n_procs) if p not in self._dead_procs
        ]
        if not self._survivors:
            raise FaultError("every rank is dead; nothing left to recover on")
        self._faults_injected += 1
        if self._first_fault_time is None:
            self._first_fault_time = now
        if self._obs is not None:
            self._obs.emit(
                Event(
                    RANK_DEAD,
                    now,
                    proc=proc,
                    category="rank",
                    label=f"rank {proc} died",
                )
            )
        # Attempts running on the dead rank die with it: reverse their
        # pre-charged accounting and bill the fraction actually burned
        # before the death as waste.
        if self._inflight:
            for tid in sorted(self._inflight):
                iproc, start, end, compute, overhead, cb = self._inflight[tid]
                if iproc != proc:
                    continue
                del self._inflight[tid]
                raw = compute + overhead
                span = end - start
                frac = (
                    max(0.0, min(1.0, (now - start) / span))
                    if span > 0.0
                    else 1.0
                )
                if cb is None:
                    # Failed/timed-out attempt: already billed as waste in
                    # full; keep only the burned fraction.
                    self._cat_time["wasted"] += raw * (frac - 1.0)
                else:
                    self._cat_time[self._pre_cat] -= overhead
                    self._cat_time["compute"] -= compute
                    self._cb_time[cb] -= compute
                    self._cat_time["wasted"] += raw * frac
        # The rank's run queue is gone with it; recover every unfinished
        # task it owned (materialized or not) onto the survivors.
        self._ready[proc].clear()
        lost = [
            tid
            for tid in self._graph_run.task_ids()
            if tid not in self._done and self._proc_of(tid) == proc
        ]
        for tid in lost:
            self._recover_task(tid)

    def _recover_task(self, tid: TaskId) -> None:
        """Re-place an unfinished task from a dead rank and rebuild it."""
        self._replace_task(tid, self._survivor_for(tid))
        if self._inflight is not None:
            self._inflight.pop(tid, None)
        self._on_recover(tid)
        self._rebuild_task(tid)

    def _rebuild_task(self, tid: TaskId) -> None:
        """Fresh physical task plus the lineage replay that refills it.

        Whatever inputs were buffered on the dead rank are lost; producers
        that already completed re-execute (idempotence), producers still
        pending will feed the rebuilt task through the normal routing
        path when they finish.  A producer *already marked replaying* (a
        second failure can arrive while an earlier recovery is in flight)
        must have this consumer merged into its replay-target set, or its
        replayed outputs would route only to the first failure's victims.
        """
        pt = _PhysicalTask(self._graph_run.task(tid))
        self._ptasks[tid] = pt
        for producer in dict.fromkeys(pt.task.incoming):
            if producer == EXTERNAL:
                if self._initial_deposited:
                    for payload in self._initial_inputs.get(tid, ()):
                        self._deposit(tid, EXTERNAL, payload)
            elif producer in self._done or producer in self._replaying:
                self._require_replay(producer, tid)
        if pt.task.n_inputs == 0:
            self._on_ready(tid)

    def _require_replay(self, producer: TaskId, consumer: TaskId) -> None:
        """Replay ``producer`` so that ``consumer`` gets its payloads back."""
        targets = self._replay_targets.get(producer)
        if targets is None:
            self._replay_targets[producer] = {consumer}
        else:
            targets.add(consumer)
        self._mark_replay(producer)

    def _mark_replay(self, tid: TaskId) -> None:
        """Schedule a completed task for re-execution (lineage replay)."""
        if tid in self._replaying:
            return
        self._replaying.add(tid)
        self._done.discard(tid)
        self._tasks_replayed += 1
        if self._proc_of(tid) in self._dead_procs:
            self._replace_task(tid, self._survivor_for(tid))
        self._on_replay(tid)
        self._rebuild_task(tid)
