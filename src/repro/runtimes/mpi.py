"""MPI runtime controller (paper Section IV-A).

Model highlights, matching the paper's description:

* **Static placement.**  A :class:`~repro.core.taskmap.TaskMap` assigns
  every task to a rank; each rank instantiates only its local subgraph.
  Not every rank needs tasks, and many tasks may share a rank —
  ``cores_per_proc`` is the per-rank thread pool ("the MPI controller uses
  the standard C++ thread API to manage a thread pool").
* **Asynchronous point-to-point messages.**  Sends never block; tasks are
  scheduled greedily in arrival order as soon as all inputs are present.
* **In-memory messages.**  Intra-rank edges skip de-/serialization and
  pass the object directly (toggle with ``costs.mpi_in_memory`` for the
  ablation study); inter-rank edges pay ``nbytes / serialize_bandwidth``
  on each side plus a per-message setup cost.
"""

from __future__ import annotations

from repro.core.errors import ControllerError
from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.core.taskmap import ModuloMap
from repro.runtimes.simbase import SimController


class MPIController(SimController):
    """Task-graph execution on the simulated MPI runtime.

    Requires a task map at :meth:`initialize`; when omitted, a
    :class:`~repro.core.taskmap.ModuloMap` over ``n_procs`` ranks is used
    (the paper's default round-robin allocation).
    """

    # Placement is a static task map: compiled run plans apply.
    _compiled_placement = True

    def _post_initialize(self) -> None:
        assert self._graph is not None
        if self._task_map is None:
            self._task_map = ModuloMap(self.n_procs, self._graph.size())
        if self._task_map.shard_count > self.n_procs:
            raise ControllerError(
                f"task map targets {self._task_map.shard_count} ranks but "
                f"controller has {self.n_procs}"
            )

    def _prepare_run(self) -> None:
        # Placement is static for the whole run, so shard() — called once
        # per message on the hot path — is memoized per task id.
        self._shard_cache: dict[TaskId, int] = {}
        super()._prepare_run()

    def _proc_of(self, tid: TaskId) -> int:
        cache = self._shard_cache
        proc = cache.get(tid)
        if proc is None:
            assert self._task_map is not None
            proc = self._task_map.shard(tid)
            cache[tid] = proc
        return proc

    def _set_placement(self, tid: TaskId, proc: int) -> None:
        # Static re-map: recovery pins the task's shard over the task map
        # (the cache is authoritative on every later shard() lookup).
        self._shard_cache[tid] = proc

    def _install_compiled_placement(self, plan) -> None:
        # The plan already flattened the task map: prefill the memo so
        # _proc_of never consults the map during the run.
        self._shard_cache = dict(enumerate(plan.proc))

    def _serialize_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc and self.costs.mpi_in_memory:
            return 0.0
        return (
            self.costs.message_overhead
            + payload.nbytes / self.costs.serialize_bandwidth
        )

    def _receive_cost(self, sproc: int, dproc: int, payload: Payload) -> float:
        if sproc == dproc and self.costs.mpi_in_memory:
            return 0.0
        return (
            self.costs.message_overhead
            + payload.nbytes / self.costs.serialize_bandwidth
        )
