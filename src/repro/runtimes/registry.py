"""The runtime registry: controllers addressable by name.

The paper's portability claim — one task graph, any runtime — deserves a
front door that treats the runtime as *data*: :data:`REGISTRY` maps a
stable string name to each controller class, :func:`resolve_runtime`
looks names up with a helpful error, and :func:`make_controller` builds a
ready-to-initialize controller from a name plus the usual constructor
kwargs (the :func:`repro.run` facade and the analysis workloads'
``run()`` methods accept either form).

The serial controller executes callbacks on a wall-clock timeline with
no simulated cluster, so :func:`make_controller` silently drops the
timing-fidelity knobs (``cost_model``, ``machine``, ``costs``, ...) for
it but refuses semantics-bearing ones (``fault_plan``, ``balancer``):
a quick ``runtime="serial"`` sanity run of a simulated configuration
works, while a config that *needs* the simulator fails loudly.  The
local (real-core) backend gets the same treatment for the simulated
clusters' fidelity knobs: ``n_procs`` becomes the worker-pool size and
the cluster-timing knobs are dropped, so one configuration dict ports
between simulated and real execution.
"""

from __future__ import annotations

import difflib
from typing import Mapping

from repro.core.errors import ControllerError
from repro.runtimes.blocking import BlockingMPIController
from repro.runtimes.charm import CharmController
from repro.runtimes.controller import Controller
from repro.runtimes.legion import LegionIndexController, LegionSPMDController
from repro.runtimes.local import LocalPoolController
from repro.runtimes.mpi import MPIController
from repro.runtimes.serial import SerialController

#: Stable runtime names, as documented in the paper's controller roster
#: (six simulated-or-serial engines plus the real-core ``"local"`` pool).
REGISTRY: Mapping[str, type[Controller]] = {
    "serial": SerialController,
    "mpi": MPIController,
    "blocking-mpi": BlockingMPIController,
    "charm": CharmController,
    "legion-spmd": LegionSPMDController,
    "legion-index": LegionIndexController,
    "local": LocalPoolController,
}

#: Constructor kwargs the serial controller has no meaning for and
#: silently ignores (it has no virtual clock or cluster model).
_SERIAL_IGNORED = frozenset(
    {
        "n_procs",
        "machine",
        "cores_per_proc",
        "cost_model",
        "costs",
        "procs_per_node",
    }
)

#: Simulated-cluster fidelity knobs the local (real-core) backend
#: silently drops: real cores keep their own time, so a simulated
#: configuration runs on the pool with its timing model ignored.
_LOCAL_IGNORED = _SERIAL_IGNORED - {"n_procs"}


def resolve_runtime(runtime: str | type[Controller]) -> type[Controller]:
    """Resolve a registry name (or pass a controller class through).

    Raises:
        ControllerError: for an unknown name, listing the valid ones.
    """
    if isinstance(runtime, type) and issubclass(runtime, Controller):
        return runtime
    cls = REGISTRY.get(runtime)  # type: ignore[arg-type]
    if cls is None:
        names = sorted(REGISTRY)
        close = difflib.get_close_matches(str(runtime), names, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ControllerError(
            f"unknown runtime {runtime!r}; valid names: "
            f"{', '.join(names)}{hint}"
        )
    return cls


def _runtime_name(runtime) -> str:
    return runtime if isinstance(runtime, str) else runtime.__name__


def _check_kwargs(cls: type[Controller], kwargs: dict, runtime) -> None:
    """Reject kwargs the backend's constructor does not take.

    The error lists the backend's full supported roster and suggests
    the closest valid name — a typo'd ``cost_modell`` fails with "did
    you mean 'cost_model'?" instead of a bare ``TypeError`` from deep
    inside the constructor.  Backends whose roster cannot be determined
    (``supported_kwargs() is None``) skip validation.
    """
    supported = cls.supported_kwargs()
    if supported is None:
        return
    unknown = sorted(set(kwargs) - supported)
    if not unknown:
        return
    parts = []
    for k in unknown:
        close = difflib.get_close_matches(k, sorted(supported), n=1)
        parts.append(f"{k!r} (did you mean {close[0]!r}?)" if close else repr(k))
    raise ControllerError(
        f"runtime {_runtime_name(runtime)!r} does not support "
        f"{', '.join(parts)}; supported kwargs: "
        f"{', '.join(sorted(supported))}"
    )


def make_controller(
    runtime: str | type[Controller],
    n_procs: int | None = None,
    **kwargs,
) -> Controller:
    """Construct a controller from a registry name and constructor kwargs.

    Args:
        runtime: a :data:`REGISTRY` name or a controller class.
        n_procs: simulated cluster size; required by every simulated
            backend, meaningless (and ignored) for ``"serial"``, and the
            worker-pool size for ``"local"`` (optional — the pool picks
            a sensible default).
        **kwargs: forwarded to the controller constructor (``cost_model``,
            ``machine``, ``fault_plan``, ``balancer``, ``sinks``, ...).
            ``None``-valued kwargs are treated as "not given".

    Raises:
        ControllerError: unknown runtime name; missing ``n_procs`` for a
            simulated backend; a kwarg the backend's constructor does
            not take (listing the backend's supported kwargs, with a
            did-you-mean hint); or a semantics-bearing kwarg
            (``fault_plan``, ``retry_policy``, ``balancer``) passed to
            the serial controller, which cannot honor it.
    """
    cls = resolve_runtime(runtime)
    kwargs = {k: v for k, v in kwargs.items() if v is not None}
    if cls is SerialController:
        unsupported = sorted(
            set(kwargs) - _SERIAL_IGNORED - {"sinks", "collect_trace"}
        )
        if unsupported:
            supported = sorted(cls.supported_kwargs() or ())
            raise ControllerError(
                f"the serial runtime does not support {unsupported} "
                f"(it has no simulated cluster); pick a simulated "
                f"runtime such as 'mpi', or use only its supported "
                f"kwargs: {', '.join(supported)}"
            )
        for k in _SERIAL_IGNORED:
            kwargs.pop(k, None)
        return SerialController(**kwargs)
    if cls is LocalPoolController:
        for k in _LOCAL_IGNORED:
            kwargs.pop(k, None)
        kwargs.pop("n_procs", None)
        if n_procs is not None:
            kwargs.setdefault("n_workers", n_procs)
        _check_kwargs(cls, kwargs, runtime)
        return LocalPoolController(**kwargs)
    kwargs.pop("n_procs", None)
    if n_procs is None:
        raise ControllerError(
            f"runtime {_runtime_name(runtime)!r} needs n_procs "
            f"(the simulated cluster size)"
        )
    _check_kwargs(cls, kwargs, runtime)
    return cls(n_procs, **kwargs)


def coerce_controller(
    controller: str | Controller,
    n_procs: int | None = None,
    **kwargs,
) -> Controller:
    """Accept either a ready controller instance or a registry name.

    The analysis workloads' ``run()`` methods use this so
    ``wl.run("mpi", n_procs=8)`` works alongside the long-form
    ``wl.run(MPIController(8))``.

    Raises:
        ControllerError: constructor kwargs passed alongside an already
            constructed controller (they could not take effect), or any
            :func:`make_controller` failure.
    """
    if isinstance(controller, str):
        return make_controller(controller, n_procs=n_procs, **kwargs)
    extras = sorted(k for k, v in kwargs.items() if v is not None)
    if n_procs is not None or extras:
        given = (["n_procs"] if n_procs is not None else []) + extras
        raise ControllerError(
            f"constructor kwargs {given} were passed with an already "
            f"constructed {type(controller).__name__}; pass a registry "
            f"name (e.g. 'mpi') to have them applied"
        )
    return controller
