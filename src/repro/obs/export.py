"""Event-stream exporters and loaders.

Two on-disk formats:

* **Chrome trace-event JSON** (:class:`ChromeTraceExporter`) — loadable
  in Perfetto / ``chrome://tracing``.  Each controller run becomes one
  process (pid); procs become threads (tid); compute and overhead
  intervals become complete (``"ph": "X"``) slices; network transfers
  land on per-proc ``net`` tracks in a sibling pid.  Every exported
  record carries the originating event in ``args.ev``, so the file
  round-trips losslessly back into :class:`~repro.obs.events.Event`
  objects via :func:`load_events`.
* **JSONL** (:class:`JsonlExporter`) — one compact JSON object per
  event, streamed as emitted (crash-safe, grep-able).

Both formats are recognised by :func:`load_events`, which the
``python -m repro.obs`` CLI and the critical-path analyzer build on.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.obs.events import (
    MESSAGE_DELIVERED,
    OVERHEAD,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_FINISHED,
    Event,
    EventSink,
)

#: Offset separating a run's compute pid from its network pid.
_NET_PID_OFFSET = 10_000
#: Seconds -> Chrome microseconds.
_US = 1e6


class ChromeTraceExporter(EventSink):
    """Buffers events and writes a Chrome trace-event file on close.

    Several controller runs may share one exporter (the benchmark
    harness attaches a single exporter to every run of a sweep); each
    run is rendered as its own named process.

    Exporters request span context (``wants_context``), so exported
    ``task_started`` records carry causal ``parents`` and the file can
    be analyzed as a causal DAG (:mod:`repro.obs.spans`).
    """

    wants_context = True

    def __init__(self, path: str) -> None:
        self.path = path
        self._events: list[Event] = []
        self._closed = False

    def emit(self, event: Event) -> None:
        self._events.append(event)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def trace_events(self) -> list[dict]:
        """The buffered stream as Chrome trace-event records."""
        records: list[dict] = []
        run = -1
        run_label = ""
        for ev in self._events:
            if ev.type == RUN_STARTED:
                run += 1
                run_label = ev.label or f"run{run}"
                for pid, suffix in (
                    (run, ""),
                    (run + _NET_PID_OFFSET, " net"),
                ):
                    records.append(
                        {
                            "name": "process_name",
                            "ph": "M",
                            "pid": pid,
                            "tid": 0,
                            "args": {"name": f"{run_label}{suffix} (run {run})"},
                        }
                    )
            pid = max(run, 0)
            records.append(self._record(ev, pid))
        records.sort(key=lambda r: (r.get("ts", -1), r["pid"]))
        return records

    @staticmethod
    def _record(ev: Event, pid: int) -> dict:
        tid = max(ev.proc, 0)
        args = {"ev": ev.to_dict()}
        base = {"pid": pid, "tid": tid, "args": args}
        if ev.type == TASK_FINISHED:
            return {
                **base,
                "ph": "X",
                "name": ev.label or f"t{ev.task}",
                "cat": "compute",
                "ts": (ev.t - ev.dur) * _US,
                "dur": ev.dur * _US,
            }
        if ev.type == OVERHEAD:
            return {
                **base,
                "ph": "X",
                "name": ev.category or "overhead",
                "cat": ev.category or "overhead",
                "ts": (ev.t - ev.dur) * _US if ev.dur else ev.t * _US,
                "dur": ev.dur * _US,
            }
        if ev.type == MESSAGE_DELIVERED:
            return {
                **base,
                "pid": pid + _NET_PID_OFFSET,
                "ph": "X",
                "name": ev.label or f"t{ev.task}->t{ev.dst_task}",
                "cat": "message",
                "ts": (ev.t - ev.dur) * _US,
                "dur": ev.dur * _US,
            }
        # Everything else (enqueue, sent, migration, run markers) becomes
        # an instant event; the payload in args.ev preserves full fidelity.
        scope = "p" if ev.type in (RUN_STARTED, RUN_FINISHED) else "t"
        return {
            **base,
            "ph": "i",
            "s": scope,
            "name": ev.type if ev.task < 0 else f"{ev.type} t{ev.task}",
            "cat": ev.type,
            "ts": max(ev.t, 0.0) * _US,
        }

    def write(self, fp: IO[str]) -> None:
        json.dump(
            {"traceEvents": self.trace_events(), "displayTimeUnit": "ms"},
            fp,
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with open(self.path, "w") as fp:
            self.write(fp)


class JsonlExporter(EventSink):
    """Streams one JSON object per event (append-only event log)."""

    wants_context = True

    def __init__(self, path: str) -> None:
        self.path = path
        self._fp: IO[str] | None = open(path, "w")

    def emit(self, event: Event) -> None:
        if self._fp is None:
            raise ValueError(f"JsonlExporter({self.path!r}) is closed")
        self._fp.write(json.dumps(event.to_dict()) + "\n")

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None


# ---------------------------------------------------------------------- #
# Loading
# ---------------------------------------------------------------------- #


def events_from_chrome(doc: dict) -> list[Event]:
    """Recover the original event stream from an exported Chrome trace.

    Exported records are timestamp-sorted, which interleaves concurrent
    runs; the recovered stream is regrouped run by run (a run's compute
    and network tracks share ``pid % _NET_PID_OFFSET``) so
    :func:`split_runs` partitions it correctly.
    """
    keyed = []
    for i, rec in enumerate(doc.get("traceEvents", [])):
        ev = (rec.get("args") or {}).get("ev")
        if ev is not None:
            run = rec.get("pid", 0) % _NET_PID_OFFSET
            keyed.append((run, i, Event.from_dict(ev)))
    keyed.sort(key=lambda k: k[:2])
    return [ev for _, _, ev in keyed]


def events_from_jsonl(lines: Iterable[str]) -> list[Event]:
    """Parse a JSONL event log."""
    return list(iter_events_jsonl(lines))


def iter_events_jsonl(lines: Iterable[str]) -> Iterator[Event]:
    """Stream a JSONL event log one event at a time."""
    for line in lines:
        line = line.strip()
        if line:
            yield Event.from_dict(json.loads(line))


def load_events(path: str) -> list[Event]:
    """Load an event stream from a Chrome-trace or JSONL file.

    The format is sniffed from the content, not the extension.

    Raises:
        ValueError: when the file is neither format.
    """
    with open(path) as fp:
        head = fp.read(1)
        fp.seek(0)
        if head == "{":
            try:
                return events_from_chrome(json.load(fp))
            except json.JSONDecodeError:
                fp.seek(0)
                return events_from_jsonl(fp)
        if head in ("[", ""):
            doc = json.load(fp) if head else {}
            if isinstance(doc, list):  # bare traceEvents array
                return events_from_chrome({"traceEvents": doc})
            return []
        raise ValueError(f"{path}: not a Chrome trace or JSONL event log")


def iter_events(path: str) -> Iterator[Event]:
    """Stream an event log without materializing it.

    JSONL files — the telemetry-scale format — are read line by line in
    O(1) memory; Chrome traces are a single JSON document, so they fall
    back to :func:`load_events` (full parse) transparently.  The CLI
    subcommands that can work single-pass (``summarize``, ``slo``)
    consume this, so multi-gigabyte JSONL traces never sit in memory.

    Raises:
        ValueError: when the file is neither format (raised on first
            iteration — generators are lazy).
    """
    with open(path) as fp:
        head = fp.read(1)
        fp.seek(0)
        if head == "{":
            first = fp.readline()
            try:
                obj = json.loads(first)
            except json.JSONDecodeError:
                obj = None  # multi-line JSON document: Chrome trace
            if isinstance(obj, dict) and "type" in obj and "t" in obj:
                yield Event.from_dict(obj)
                yield from iter_events_jsonl(fp)
                return
            # Chrome traces (even single-line ones) need the full parse.
            yield from load_events(path)
            return
        if head in ("[", ""):
            yield from load_events(path)
            return
        raise ValueError(f"{path}: not a Chrome trace or JSONL event log")


def iter_runs(events: Iterable[Event]) -> Iterator[list[Event]]:
    """Stream run partitions from a (possibly streaming) event source.

    Like :func:`split_runs`, but holds only one run's events at a time —
    pairs with :func:`iter_events` so per-run analyses over a huge
    multi-run log never see more than the largest single run.
    """
    current: list[Event] = []
    for ev in events:
        if ev.type == RUN_STARTED and current:
            yield current
            current = []
        current.append(ev)
    if current:
        yield current


def split_runs(events: Iterable[Event]) -> list[list[Event]]:
    """Partition a multi-run stream at ``run_started`` boundaries.

    Events preceding the first ``run_started`` (legacy streams) form
    their own run.
    """
    runs: list[list[Event]] = []
    current: list[Event] = []
    for ev in events:
        if ev.type == RUN_STARTED and current:
            runs.append(current)
            current = []
        current.append(ev)
    if current:
        runs.append(current)
    return runs


__all__ = [
    "ChromeTraceExporter",
    "JsonlExporter",
    "events_from_chrome",
    "events_from_jsonl",
    "iter_events",
    "iter_events_jsonl",
    "iter_runs",
    "load_events",
    "split_runs",
]
