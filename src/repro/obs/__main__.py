"""Entry point: ``python -m repro.obs summarize <trace>``."""

from repro.obs.cli import main

raise SystemExit(main())
