"""Structured runtime lifecycle events and the sink protocol.

Every controller — serial, MPI, Charm++, Legion SPMD, and Legion
index-launch — narrates its execution through the same small vocabulary
of events, emitted at the points where trace spans were recorded
historically.  Consumers implement :class:`EventSink`; a controller fans
events out to its attached sinks through
:class:`~repro.obs.hub.ObsHub`.

Events are *zero-cost when unobserved*: controllers construct an
:class:`Event` only inside an ``if hub:`` guard, so a run with no sinks
attached allocates nothing (the regression test in
``tests/test_obs_overhead.py`` enforces this).

Timestamps are virtual seconds (wall seconds for the serial controller,
which has no virtual clock).  Events may be emitted out of timestamp
order — the simulator knows a span's end at submission time — so
consumers that need chronology should sort by ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: A task entered a proc's ready queue (all inputs present).
TASK_ENQUEUED = "task_enqueued"
#: A task's callback began computing on a core (runtime overhead paid).
TASK_STARTED = "task_started"
#: A task's callback finished; ``dur`` is its compute time.
TASK_FINISHED = "task_finished"
#: A dataflow payload entered the wire (or the in-proc fast path).
MESSAGE_SENT = "message_sent"
#: A dataflow payload arrived at its destination proc.
MESSAGE_DELIVERED = "message_delivered"
#: Runtime bookkeeping time (``category``: dispatch, staging, serialize,
#: launch, spawn, lb, migrate, send, wasted, ...).
OVERHEAD = "overhead"
#: Charm++ moved a queued chare between PEs (load balancing).
MIGRATION = "migration"
#: A controller run began; ``label`` is the backend class name.
RUN_STARTED = "run_started"
#: A controller run completed; ``t`` and ``dur`` are the makespan.
RUN_FINISHED = "run_finished"

#: A planned fault fired (``category``: ``task`` for a transient task
#: fault, ``timeout`` for a per-task timeout detection, ``rank`` for a
#: permanent rank death, ``link`` for a dropped message).
FAULT_INJECTED = "fault.injected"
#: A failed attempt was rescheduled; ``dur`` is the backoff delay and
#: ``proc`` the rank the retry will run on.
TASK_RETRY = "task.retry"
#: A rank died permanently; everything it held is lost.
RANK_DEAD = "rank.dead"
#: Recovery re-placed a task from a dead rank onto a survivor
#: (``proc`` -> ``dst_proc``).
TASK_MIGRATED = "task.migrated"

#: Events emitted only by the fault-tolerance layer (:mod:`repro.faults`);
#: they appear in a stream only when a fault plan is installed.
FAULT_VOCABULARY = frozenset(
    {FAULT_INJECTED, TASK_RETRY, RANK_DEAD, TASK_MIGRATED}
)

#: A planned task map was installed for the run; ``category`` is the
#: planning strategy, ``dur`` the planner's estimated makespan.
SCHED_PLANNED = "sched.planned"
#: A balancer moved a queued task between procs (``proc`` ->
#: ``dst_proc``; ``nbytes`` is the buffered input state transferred).
SCHED_MIGRATED = "sched.migrated"
#: An idle proc stole a queued task (``proc`` is the victim,
#: ``dst_proc`` the thief); the matching ``sched.migrated`` follows.
SCHED_STEAL = "sched.steal"
#: A requested plan-level feature could not apply and the run degraded
#: gracefully: a ``compile=True`` run fell back to the interpreted
#: engine, or the local (real-core) backend ignored a feature that only
#: exists on the simulated clusters.  ``category`` names the blocker
#: (``"faults"``, ``"balancer"``, ``"telemetry"``, or ``"backend"``).
#: Emitted only when the feature was requested, so clean streams are
#: unchanged.
PLAN_FALLBACK = "plan.fallback"

#: Events emitted only by the scheduling layer (:mod:`repro.sched`);
#: they appear in a stream only when a planned map, balancer, or
#: ``compile=`` request is installed (Charm++'s built-in balancer keeps
#: its legacy ``migration`` events for compatibility).
SCHED_VOCABULARY = frozenset(
    {SCHED_PLANNED, SCHED_MIGRATED, SCHED_STEAL, PLAN_FALLBACK}
)

#: A task's callback began executing *right now* (real time, reported
#: by the worker that runs it).  Unlike ``task_started`` — which the
#: local backend emits retroactively when the attempt's future resolves
#: — this event exists so in-flight monitors see work the moment it
#: lands on a core.
TASK_RUNNING = "task.running"
#: Periodic worker liveness beacon; ``proc`` is the worker slot.
#: Silence past the configured timeout raises a stall alert.
WORKER_HEARTBEAT = "worker.heartbeat"

#: Events that exist only on the live bus (:mod:`repro.obs.live`).
#: They are deliberately *not* part of :data:`VOCABULARY`: sinks never
#: receive them, so recorded traces — and the golden determinism
#: streams — are byte-identical whether or not a run is being watched.
LIVE_VOCABULARY = frozenset({TASK_RUNNING, WORKER_HEARTBEAT})

#: A request entered :meth:`~repro.service.RunService.submit`
#: (``label`` is the tenant).
SERVICE_SUBMITTED = "service.submitted"
#: A submission was rejected at admission; ``category`` is the reason
#: (``"tenant-quota"`` or ``"queue-full"``).
SERVICE_REJECTED = "service.rejected"
#: A submission coalesced onto an identical in-flight execution.
SERVICE_DEDUP = "service.dedup"
#: A queued request was withdrawn by its submitter.
SERVICE_CANCELLED = "service.cancelled"
#: A service execution slot picked up a request.
SERVICE_RUN_STARTED = "service.run_started"
#: A service execution resolved; ``dur`` is wall seconds on the slot,
#: ``category`` is ``""`` on success or ``"error"``.
SERVICE_RUN_FINISHED = "service.run_finished"
#: A service-level SLO bound was violated; ``category`` carries the
#: violation message.
SERVICE_SLO_BREACH = "service.slo_breach"

#: Events emitted only by the run service (:mod:`repro.service`) into
#: its *service-level* sinks.  Like :data:`LIVE_VOCABULARY` they are not
#: part of :data:`VOCABULARY`: per-run sinks attached to a controller
#: never see them, so recorded run traces are unchanged whether a run
#: went through ``repro.run`` or through a service.
SERVICE_VOCABULARY = frozenset(
    {
        SERVICE_SUBMITTED,
        SERVICE_REJECTED,
        SERVICE_DEDUP,
        SERVICE_CANCELLED,
        SERVICE_RUN_STARTED,
        SERVICE_RUN_FINISHED,
        SERVICE_SLO_BREACH,
    }
)

#: The complete event vocabulary shared by all backends.
VOCABULARY = (
    frozenset(
        {
            TASK_ENQUEUED,
            TASK_STARTED,
            TASK_FINISHED,
            MESSAGE_SENT,
            MESSAGE_DELIVERED,
            OVERHEAD,
            MIGRATION,
            RUN_STARTED,
            RUN_FINISHED,
        }
    )
    | FAULT_VOCABULARY
    | SCHED_VOCABULARY
)

#: Lifecycle events every backend emits on every non-empty run
#: (``MIGRATION`` is conditional on the Charm++ load balancer acting).
CORE_VOCABULARY = frozenset(
    {
        TASK_ENQUEUED,
        TASK_STARTED,
        TASK_FINISHED,
        MESSAGE_SENT,
        MESSAGE_DELIVERED,
        OVERHEAD,
        RUN_STARTED,
        RUN_FINISHED,
    }
)


@dataclass(frozen=True, slots=True)
class Event:
    """One structured observation of a controller run.

    Attributes:
        type: one of the module-level event-type constants.
        t: virtual timestamp in seconds (event end for ``*_finished`` /
            ``message_delivered``; those carry the extent in ``dur``).
        proc: proc the event happened on (sender for messages; -1 for
            run-level events that belong to no proc).
        task: primary task id (producer for messages; -1 when N/A).
        dst_proc: receiving proc for messages and migrations.
        dst_task: consuming task for dataflow messages.
        dur: extent in virtual seconds (compute time, overhead time,
            send-to-delivery time).
        category: overhead category (matches the ``Stats`` categories).
        nbytes: payload size for messages and migrations.
        label: human-readable annotation (span label compatibility).
        parents: causal parents of a ``task_started`` event — the
            producer task id of every payload the attempt consumed, in
            arrival order (one entry per input slot, so a producer
            feeding several channels appears several times).  Only
            populated when an attached sink requests span context
            (``EventSink.wants_context``); plain sinks see the exact
            historical stream.  Together with the ``task``/``dst_task``
            pair on every message event, this makes an exported trace a
            causal DAG (task -> message -> task).
    """

    type: str
    t: float
    proc: int = -1
    task: int = -1
    dst_proc: int = -1
    dst_task: int = -1
    dur: float = 0.0
    category: str = ""
    nbytes: int = 0
    label: str = ""
    parents: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        """Compact dict form: default-valued fields are dropped."""
        out: dict = {"type": self.type, "t": self.t}
        for f in fields(self):
            if f.name in ("type", "t"):
                continue
            v = getattr(self, f.name)
            if v != f.default:
                out[f.name] = list(v) if f.name == "parents" else v
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "Event":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        known = {f.name for f in fields(cls)}
        kw = {k: v for k, v in d.items() if k in known}
        if "parents" in kw:
            # JSON has no tuples; restore the canonical immutable form.
            kw["parents"] = tuple(kw["parents"])
        return cls(**kw)


class EventSink:
    """Receives the event stream of one or more controller runs.

    Subclasses override :meth:`emit`; :meth:`close` flushes any buffered
    state (file exporters write their output here).  A sink may be
    attached to several controllers in sequence — runs are delimited by
    ``run_started`` / ``run_finished`` events.

    ``wants_context`` opts the sink into *span-context threading*: when
    any attached sink sets it, controllers track which producer fed each
    input slot and stamp :attr:`Event.parents` onto ``task_started``
    events.  It defaults to False so existing consumers (and the golden
    determinism streams) observe the exact historical event shapes.
    """

    #: Ask controllers to thread causal parent ids onto task events.
    wants_context: bool = False

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class ListSink(EventSink):
    """Buffers every event in memory (tests, ad-hoc analysis)."""

    def __init__(self, wants_context: bool = False) -> None:
        self.events: list[Event] = []
        self.wants_context = wants_context

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def by_type(self, type_: str) -> list[Event]:
        """All buffered events of one type, in emission order."""
        return [e for e in self.events if e.type == type_]

    def types(self) -> set[str]:
        """The set of event types observed so far."""
        return {e.type for e in self.events}
