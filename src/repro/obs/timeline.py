"""Virtual-time resource timelines derived from one run's event stream.

Turns the flat event list into per-rank step functions
(:class:`~repro.obs.metrics.TimeSeries`):

* **utilization** — merged busy intervals (compute + overhead) per rank;
* **run-queue depth** — ``task_enqueued`` / ``task_started`` deltas,
  corrected for Charm++ load-balance migrations and rank deaths;
* **per-link in-flight bytes** — ``message_sent`` / ``message_delivered``
  deltas per ``(src, dst)`` proc pair;
* **payload memory** — bytes of delivered-but-unconsumed inputs buffered
  per rank (released when the consuming task first dispatches, matching
  the simulator's release point).

Plus two renderers: :func:`ascii_timeline` (per-rank Gantt with
utilization / queue-peak / memory-peak columns, terminal-friendly) and
:func:`svg_timeline` (a dependency-free SVG Gantt).

Everything is offline analysis over a captured stream; nothing here
runs while the simulator is executing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import (
    MESSAGE_DELIVERED,
    MESSAGE_SENT,
    MIGRATION,
    OVERHEAD,
    RANK_DEAD,
    RUN_FINISHED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_STARTED,
    Event,
)
from repro.obs.metrics import TimeSeries

__all__ = [
    "RunTimelines",
    "resource_timelines",
    "ascii_timeline",
    "svg_timeline",
]


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals (multi-core ranks)."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for s, e in intervals[1:]:
        ls, le = merged[-1]
        if s <= le:
            if e > le:
                merged[-1] = (ls, e)
        else:
            merged.append((s, e))
    return merged


def _series_from_deltas(deltas: list[tuple[float, float]]) -> TimeSeries:
    """Cumulative-sum a time-ordered delta list into a step function."""
    ts = TimeSeries()
    deltas.sort(key=lambda d: d[0])
    level = 0.0
    for t, d in deltas:
        level = max(0.0, level + d)
        ts.sample(t, level)
    return ts


@dataclass
class RunTimelines:
    """Per-rank resource step functions of one run."""

    n_procs: int = 0
    makespan: float = 0.0
    #: merged busy (compute+overhead) intervals per rank
    busy: list[list[tuple[float, float]]] = field(default_factory=list)
    #: ready-queue depth per rank
    queue_depth: list[TimeSeries] = field(default_factory=list)
    #: buffered input-payload bytes per rank
    mem_bytes: list[TimeSeries] = field(default_factory=list)
    #: in-flight bytes per (src_proc, dst_proc) link
    inflight_bytes: dict[tuple[int, int], TimeSeries] = field(
        default_factory=dict
    )

    def busy_seconds(self, proc: int) -> float:
        return sum(e - s for s, e in self.busy[proc])

    def utilization(self, proc: int) -> float:
        """Fraction of the makespan rank ``proc`` had work on a core."""
        if self.makespan <= 0:
            return 0.0
        return min(1.0, self.busy_seconds(proc) / self.makespan)

    def utilization_mean(self) -> float:
        if not self.n_procs:
            return 0.0
        return sum(self.utilization(p) for p in range(self.n_procs)) / (
            self.n_procs
        )

    def idle_fraction(self) -> float:
        return 1.0 - self.utilization_mean()

    def queue_depth_peak(self, proc: int | None = None) -> float:
        """High-water run-queue depth of one rank (or the whole run)."""
        if proc is not None:
            return self.queue_depth[proc].max()
        return max(
            (ts.max() for ts in self.queue_depth), default=0.0
        )

    def mem_bytes_peak(self, proc: int | None = None) -> float:
        """High-water buffered payload bytes of one rank (or all)."""
        if proc is not None:
            return self.mem_bytes[proc].max()
        return max((ts.max() for ts in self.mem_bytes), default=0.0)

    def inflight_bytes_peak(self) -> float:
        """High-water in-flight bytes over every link."""
        return max(
            (ts.max() for ts in self.inflight_bytes.values()), default=0.0
        )


def resource_timelines(events: list[Event]) -> RunTimelines:
    """Sample one run's events into :class:`RunTimelines`."""
    n_procs = 0
    makespan = 0.0
    busy_raw: dict[int, list[tuple[float, float]]] = {}
    queue_deltas: dict[int, list[tuple[float, float]]] = {}
    link_deltas: dict[tuple[int, int], list[tuple[float, float]]] = {}
    mem_deltas: dict[int, list[tuple[float, float]]] = {}
    #: delivered-but-unconsumed bytes per task: [(rank, nbytes), ...]
    buffered: dict[int, list[tuple[int, int]]] = {}
    started: set[int] = set()

    for ev in sorted(events, key=lambda e: e.t):
        p = ev.proc
        if p >= 0 and p + 1 > n_procs:
            n_procs = p + 1
        if ev.dst_proc >= 0 and ev.dst_proc + 1 > n_procs:
            n_procs = ev.dst_proc + 1
        if ev.type == TASK_FINISHED:
            makespan = max(makespan, ev.t)
            if ev.dur > 0:
                busy_raw.setdefault(p, []).append((ev.t - ev.dur, ev.t))
        elif ev.type == OVERHEAD:
            if ev.dur > 0:
                busy_raw.setdefault(p, []).append((ev.t - ev.dur, ev.t))
        elif ev.type == TASK_ENQUEUED:
            queue_deltas.setdefault(p, []).append((ev.t, 1.0))
        elif ev.type == TASK_STARTED:
            queue_deltas.setdefault(p, []).append((ev.t, -1.0))
            if ev.task >= 0 and ev.task not in started:
                # First dispatch releases the task's buffered inputs
                # (the simulator drops its slot references here too).
                started.add(ev.task)
                for rank, nbytes in buffered.pop(ev.task, ()):
                    mem_deltas.setdefault(rank, []).append(
                        (ev.t, -float(nbytes))
                    )
        elif ev.type == MESSAGE_SENT:
            if ev.dst_proc >= 0 and ev.dst_proc != p:
                link_deltas.setdefault((p, ev.dst_proc), []).append(
                    (ev.t, float(ev.nbytes))
                )
        elif ev.type == MESSAGE_DELIVERED:
            makespan = max(makespan, ev.t)
            if ev.dst_proc >= 0 and ev.dst_proc != p:
                link_deltas.setdefault((p, ev.dst_proc), []).append(
                    (ev.t, -float(ev.nbytes))
                )
            if ev.dst_task >= 0 and ev.dst_task not in started and ev.nbytes:
                rank = ev.dst_proc if ev.dst_proc >= 0 else p
                buffered.setdefault(ev.dst_task, []).append(
                    (rank, ev.nbytes)
                )
                mem_deltas.setdefault(rank, []).append(
                    (ev.t, float(ev.nbytes))
                )
        elif ev.type == MIGRATION:
            # A queued chare left its source PE's ready queue.
            queue_deltas.setdefault(p, []).append((ev.t, -1.0))
        elif ev.type == RANK_DEAD:
            # The dead rank's queue (and buffers) vanish with it; clamp
            # the series to zero with a large negative delta.
            queue_deltas.setdefault(p, []).append((ev.t, float("-inf")))
            mem_deltas.setdefault(p, []).append((ev.t, float("-inf")))
        elif ev.type == RUN_FINISHED:
            makespan = max(makespan, ev.t)

    tl = RunTimelines(n_procs=n_procs, makespan=makespan)
    tl.busy = [_merge(busy_raw.get(p, [])) for p in range(n_procs)]
    tl.queue_depth = [
        _series_from_deltas(queue_deltas.get(p, [])) for p in range(n_procs)
    ]
    tl.mem_bytes = [
        _series_from_deltas(mem_deltas.get(p, [])) for p in range(n_procs)
    ]
    tl.inflight_bytes = {
        link: _series_from_deltas(deltas)
        for link, deltas in sorted(link_deltas.items())
    }
    return tl


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GB"


def ascii_timeline(
    events: list[Event], width: int = 64, max_procs: int = 32
) -> str:
    """Per-rank Gantt plus utilization / queue / memory peaks.

    ``#`` cells are compute, ``+`` overhead (compute wins a shared
    cell), ``.`` idle.  Ranks beyond ``max_procs`` are elided.
    """
    tl = resource_timelines(events)
    if tl.makespan <= 0 or not tl.n_procs:
        return "(empty run)"
    scale = width / tl.makespan

    compute_cells: dict[int, set[int]] = {}
    overhead_cells: dict[int, set[int]] = {}
    for ev in events:
        if ev.dur <= 0 or ev.proc < 0:
            continue
        if ev.type == TASK_FINISHED:
            cells = compute_cells.setdefault(ev.proc, set())
        elif ev.type == OVERHEAD:
            cells = overhead_cells.setdefault(ev.proc, set())
        else:
            continue
        a = int((ev.t - ev.dur) * scale)
        b = max(a, min(width - 1, int(ev.t * scale)))
        cells.update(range(a, b + 1))

    lines = [
        f"{'rank':>6}  {'util':>6}  {'q^':>4}  {'mem^':>8}  "
        f"0 {'-' * (width - 4)} {tl.makespan:.6f}s"
    ]
    shown = min(tl.n_procs, max_procs)
    for p in range(shown):
        comp = compute_cells.get(p, set())
        ovh = overhead_cells.get(p, set())
        row = "".join(
            "#" if c in comp else "+" if c in ovh else "."
            for c in range(width)
        )
        lines.append(
            f"p{p:<5}  {tl.utilization(p):>5.1%}  "
            f"{int(tl.queue_depth_peak(p)):>4}  "
            f"{_fmt_bytes(tl.mem_bytes_peak(p)):>8}  |{row}|"
        )
    if tl.n_procs > shown:
        lines.append(f"... {tl.n_procs - shown} more ranks elided ...")
    lines.append(
        f"mean utilization {tl.utilization_mean():.1%}, idle "
        f"{tl.idle_fraction():.1%}; peak in-flight "
        f"{_fmt_bytes(tl.inflight_bytes_peak())} across "
        f"{len(tl.inflight_bytes)} links"
    )
    return "\n".join(lines)


_SVG_COLORS = {
    "compute": "#4e79a7",
    "dispatch": "#f28e2b",
    "staging": "#e15759",
    "serialize": "#76b7b2",
    "launch": "#59a14f",
    "spawn": "#edc948",
    "lb": "#b07aa1",
    "migrate": "#ff9da7",
    "send": "#9c755f",
    "wasted": "#e15759",
}
_SVG_DEFAULT = "#bab0ac"


def svg_timeline(events: list[Event], width: int = 960) -> str:
    """Render one run as a dependency-free SVG Gantt (one lane per rank)."""
    tl = resource_timelines(events)
    lane_h, pad, label_w = 18, 4, 56
    n = max(tl.n_procs, 1)
    height = pad * 2 + n * (lane_h + pad) + 16
    scale = (
        (width - label_w - pad) / tl.makespan if tl.makespan > 0 else 0.0
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for p in range(tl.n_procs):
        y = pad + p * (lane_h + pad)
        parts.append(
            f'<text x="2" y="{y + lane_h - 5}" fill="#333">p{p}</text>'
        )
        parts.append(
            f'<rect x="{label_w}" y="{y}" '
            f'width="{width - label_w - pad}" height="{lane_h}" '
            f'fill="#f2f2f2"/>'
        )
    for ev in sorted(events, key=lambda e: e.t):
        if ev.proc < 0 or ev.dur <= 0:
            continue
        if ev.type == TASK_FINISHED:
            color, title = _SVG_COLORS["compute"], ev.label or f"t{ev.task}"
        elif ev.type == OVERHEAD:
            color = _SVG_COLORS.get(ev.category, _SVG_DEFAULT)
            title = ev.label or ev.category or "overhead"
        else:
            continue
        x = label_w + (ev.t - ev.dur) * scale
        w = max(ev.dur * scale, 0.5)
        y = pad + ev.proc * (lane_h + pad)
        parts.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{lane_h}" fill="{color}">'
            f"<title>{title} [{ev.t - ev.dur:.6f}, {ev.t:.6f}]</title>"
            f"</rect>"
        )
    parts.append(
        f'<text x="{label_w}" y="{height - 4}" fill="#333">'
        f"makespan {tl.makespan:.6f}s, {tl.n_procs} ranks, "
        f"mean util {tl.utilization_mean():.1%}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
