"""Always-on, low-overhead run metrics.

Unlike the event stream (opt-in, allocation per event), the metrics
registry is collected on *every* run: its instruments are a handful of
attribute updates per task, cheap enough to leave on at 32k simulated
procs.  Controllers snapshot the registry into
:attr:`~repro.runtimes.result.RunResult.metrics` at the end of a run.

Instruments:

* :class:`Counter` — monotonically increasing integer/float.
* :class:`Gauge` — last-written value (set at snapshot time for derived
  quantities like utilization).
* :class:`Histogram` — power-of-two bucketed distribution with exact
  count/total/min/max; ``observe`` is O(1) with no allocation after the
  first hit of a bucket.
* :class:`TimeSeries` — step-function samples over virtual time; the
  store behind the resource timelines (:mod:`repro.obs.timeline`), which
  are derived offline from an event stream, never on the hot path.
  Optional ``max_samples`` bounds memory by deterministic decimation.
* :class:`~repro.obs.telemetry.sketch.QuantileSketch` — streaming
  percentiles with a relative-error guarantee, registered via
  :meth:`MetricsRegistry.sketch`.  Only built when a controller opts
  into telemetry, so clean-run snapshots stay bit-identical.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.obs.telemetry.sketch import DEFAULT_REL_ERR, QuantileSketch


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def set_max(self, v: float) -> None:
        """Keep the running maximum of the observed values."""
        if v > self.value:
            self.value = v


class Histogram:
    """Log2-bucketed distribution of non-negative samples.

    Bucket ``e`` counts samples ``x`` with ``2**(e-1) <= x < 2**e``
    (``frexp`` exponent); zeros land in a dedicated bucket.  Exact
    ``count``, ``total``, ``min`` and ``max`` ride along, so means and
    extremes are not quantized.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        e = math.frexp(x)[1] if x > 0 else -1074  # zero/denormal bucket
        b = self.buckets
        try:
            b[e] += 1
        except KeyError:
            b[e] = 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Plain-dict form (JSON-friendly)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                (2.0 ** e if e > -1074 else 0.0): n
                for e, n in sorted(self.buckets.items())
            },
        }


class TimeSeries:
    """A right-continuous step function sampled over virtual time.

    ``sample(t, v)`` records "the quantity became ``v`` at time ``t``";
    the value holds until the next sample.  Sample times must be
    non-decreasing (event-stream builders sort first); equal-time
    samples collapse to the last write, keeping the series canonical.

    ``max_samples`` (off by default, so existing series — and the
    goldens derived from them — are bit-identical) bounds memory: when
    the store exceeds it, every other interior sample is dropped.  The
    survivors keep their exact ``(t, v)`` pairs and their order, so the
    result is still a valid step function with the same first and final
    values; resolution halves between the retained steps.  Decimation
    is purely index-based — deterministic for a deterministic stream.
    """

    __slots__ = ("times", "values", "max_samples")

    def __init__(self, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 2:
            raise ValueError(
                f"max_samples must be >= 2, got {max_samples}"
            )
        self.times: list[float] = []
        self.values: list[float] = []
        self.max_samples = max_samples

    def sample(self, t: float, v: float) -> None:
        times = self.times
        if times:
            last = times[-1]
            if t < last:
                raise ValueError(
                    f"TimeSeries samples must be time-ordered "
                    f"({t} < {last})"
                )
            if t == last:
                self.values[-1] = v
                return
        times.append(t)
        self.values.append(v)
        if self.max_samples is not None and len(times) > self.max_samples:
            self._decimate()

    def _decimate(self) -> None:
        """Drop every other interior sample (first and last survive)."""
        times, values = self.times, self.values
        n = len(times)
        keep = list(range(0, n - 1, 2))
        if keep[-1] != n - 1:
            keep.append(n - 1)
        self.times = [times[i] for i in keep]
        self.values = [values[i] for i in keep]

    def __len__(self) -> int:
        return len(self.times)

    def __bool__(self) -> bool:
        return bool(self.times)

    @property
    def final(self) -> float:
        """The value after the last sample (0.0 for an empty series)."""
        return self.values[-1] if self.values else 0.0

    def max(self, default: float = 0.0) -> float:
        """High-water mark of the series."""
        return max(self.values, default=default)

    def value_at(self, t: float) -> float:
        """The step function evaluated at ``t`` (0.0 before the first sample)."""
        i = bisect_right(self.times, t) - 1
        return self.values[i] if i >= 0 else 0.0

    def integral(self, until: float) -> float:
        """Time-weighted integral of the series over ``[0, until]``."""
        total = 0.0
        times, values = self.times, self.values
        for i, (t, v) in enumerate(zip(times, values)):
            if t >= until:
                break
            t_next = times[i + 1] if i + 1 < len(times) else until
            total += v * (min(t_next, until) - t)
        return total

    def mean(self, until: float) -> float:
        """Time-weighted mean over ``[0, until]``."""
        return self.integral(until) / until if until > 0 else 0.0

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-friendly)."""
        return {"t": list(self.times), "v": list(self.values)}


@dataclass
class MetricsSnapshot:
    """Frozen copy of a registry, attached to a finished run's result."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    timeseries: dict[str, dict] = field(default_factory=dict)
    #: Serialized quantile sketches (:meth:`QuantileSketch.to_dict`),
    #: present only on telemetry-enabled runs.
    sketches: dict[str, dict] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    def quantile(self, name: str, q: float, default: float = 0.0) -> float:
        """Read quantile ``q`` from sketch ``name`` (within its rel_err).

        Common quantiles are precomputed in the serialized form; any
        other ``q`` is answered by rebuilding the sketch.
        """
        d = self.sketches.get(name)
        if d is None:
            return default
        key = {0.50: "p50", 0.95: "p95", 0.99: "p99"}.get(q)
        if key is not None and key in d:
            return d[key]
        return QuantileSketch.from_dict(d).quantile(q)

    def summary(self) -> str:
        """Multi-line human-readable dump."""
        lines = []
        for name, v in sorted(self.counters.items()):
            lines.append(f"{name} = {v:g}")
        for name, v in sorted(self.gauges.items()):
            lines.append(f"{name} = {v:.6g}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"{name}: n={h['count']} mean={h['mean']:.6g} "
                f"min={h['min']:.6g} max={h['max']:.6g}"
            )
        for name, s in sorted(self.sketches.items()):
            lines.append(
                f"{name}: n={s['count']} p50={s['p50']:.6g} "
                f"p95={s['p95']:.6g} p99={s['p99']:.6g} "
                f"max={s['max']:.6g}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-able form of every instrument family.

        This is the shape the live status writer embeds in its
        snapshots (and ``python -m repro.obs serve`` exports as
        Prometheus text); ``timeseries`` is omitted — per-sample series
        belong in traces, not in a poll-every-250ms status file.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": dict(self.histograms),
            "sketches": dict(self.sketches),
        }


class MetricsRegistry:
    """Named instruments of one controller run.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so hot paths
    fetch the instrument once and update the returned object directly.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timeseries: dict[str, TimeSeries] = {}
        self._sketches: dict[str, QuantileSketch] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def timeseries(
        self, name: str, max_samples: int | None = None
    ) -> TimeSeries:
        ts = self._timeseries.get(name)
        if ts is None:
            ts = self._timeseries[name] = TimeSeries(max_samples)
        return ts

    def sketch(
        self, name: str, rel_err: float = DEFAULT_REL_ERR
    ) -> QuantileSketch:
        """Get-or-create a streaming quantile sketch.

        Only telemetry-enabled runs call this — a registry with no
        sketches snapshots exactly as before, so goldens are unchanged.
        """
        sk = self._sketches.get(name)
        if sk is None:
            sk = self._sketches[name] = QuantileSketch(rel_err)
        return sk

    def snapshot(self) -> MetricsSnapshot:
        """Copy every instrument into a plain :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: h.snapshot() for k, h in self._histograms.items()},
            timeseries={
                k: ts.to_dict() for k, ts in self._timeseries.items()
            },
            sketches={
                k: sk.to_dict() for k, sk in self._sketches.items()
            },
        )
