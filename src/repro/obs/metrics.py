"""Always-on, low-overhead run metrics.

Unlike the event stream (opt-in, allocation per event), the metrics
registry is collected on *every* run: its instruments are a handful of
attribute updates per task, cheap enough to leave on at 32k simulated
procs.  Controllers snapshot the registry into
:attr:`~repro.runtimes.result.RunResult.metrics` at the end of a run.

Instruments:

* :class:`Counter` — monotonically increasing integer/float.
* :class:`Gauge` — last-written value (set at snapshot time for derived
  quantities like utilization).
* :class:`Histogram` — power-of-two bucketed distribution with exact
  count/total/min/max; ``observe`` is O(1) with no allocation after the
  first hit of a bucket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def set_max(self, v: float) -> None:
        """Keep the running maximum of the observed values."""
        if v > self.value:
            self.value = v


class Histogram:
    """Log2-bucketed distribution of non-negative samples.

    Bucket ``e`` counts samples ``x`` with ``2**(e-1) <= x < 2**e``
    (``frexp`` exponent); zeros land in a dedicated bucket.  Exact
    ``count``, ``total``, ``min`` and ``max`` ride along, so means and
    extremes are not quantized.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        e = math.frexp(x)[1] if x > 0 else -1074  # zero/denormal bucket
        b = self.buckets
        try:
            b[e] += 1
        except KeyError:
            b[e] = 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Plain-dict form (JSON-friendly)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                (2.0 ** e if e > -1074 else 0.0): n
                for e, n in sorted(self.buckets.items())
            },
        }


@dataclass
class MetricsSnapshot:
    """Frozen copy of a registry, attached to a finished run's result."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    def summary(self) -> str:
        """Multi-line human-readable dump."""
        lines = []
        for name, v in sorted(self.counters.items()):
            lines.append(f"{name} = {v:g}")
        for name, v in sorted(self.gauges.items()):
            lines.append(f"{name} = {v:.6g}")
        for name, h in sorted(self.histograms.items()):
            lines.append(
                f"{name}: n={h['count']} mean={h['mean']:.6g} "
                f"min={h['min']:.6g} max={h['max']:.6g}"
            )
        return "\n".join(lines)


class MetricsRegistry:
    """Named instruments of one controller run.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so hot paths
    fetch the instrument once and update the returned object directly.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    def snapshot(self) -> MetricsSnapshot:
        """Copy every instrument into a plain :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: h.snapshot() for k, h in self._histograms.items()},
        )
