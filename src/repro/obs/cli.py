"""``python -m repro.obs`` — summarize saved runtime traces.

Sub-commands:

* ``summarize <trace>`` — per-run category totals, top-k tasks, load
  imbalance, and the critical-path breakdown.  Accepts Chrome
  trace-event files written by
  :class:`~repro.obs.export.ChromeTraceExporter` (``REPRO_TRACE=...``)
  and JSONL event logs.  ``--gantt`` adds the ASCII schedule.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs.critical_path import critical_path
from repro.obs.events import RUN_STARTED, Event
from repro.obs.export import load_events, split_runs


def _run_label(run: list[Event], index: int) -> str:
    for ev in run:
        if ev.type == RUN_STARTED:
            return ev.label or f"run {index}"
    return f"run {index}"


def summarize_run(run: list[Event], index: int, top: int, show_gantt: bool) -> str:
    """Render one run's summary block."""
    # Reporting sits on the sim layer; import here keeps repro.obs
    # importable without pulling numpy at module import time.
    from repro.sim.report import (
        category_breakdown,
        gantt,
        imbalance,
        n_procs_of,
        stats_from_events,
        top_tasks,
        trace_from_events,
    )

    stats = stats_from_events(run)
    procs = n_procs_of(run)
    lines = [
        f"== {_run_label(run, index)} ({procs} procs) ==",
        f"makespan {stats.makespan:.6f}s  tasks {stats.tasks_executed}  "
        f"messages {stats.messages}  bytes {stats.bytes_sent}",
        "",
        "where the time went (all procs):",
        category_breakdown(stats),
    ]

    rows = top_tasks(run, top)
    if rows:
        lines += ["", f"top {len(rows)} tasks by compute time:"]
        lines += [
            f"  t{task:<8} {dur:.6f}s  on p{proc}" for task, dur, proc in rows
        ]

    trace = trace_from_events(run)
    if procs > 0 and trace.spans:
        lines += [
            "",
            f"load imbalance (max/mean busy): "
            f"{imbalance(trace, procs):.2f}",
        ]

    cp = critical_path(run)
    if cp.steps:
        chain = " -> ".join(f"t{t}" for t in cp.tasks[:12])
        if len(cp.tasks) > 12:
            chain += f" -> ... ({len(cp.tasks)} tasks)"
        lines += [
            "",
            f"critical path ({len(cp.steps)} tasks, "
            f"ends at {cp.makespan:.6f}s):",
            f"  {chain}",
            f"  {cp.breakdown()}",
        ]

    if show_gantt and trace.spans and procs > 0:
        lines += ["", "schedule (# = computing):", gantt(trace, procs)]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser(
        "summarize", help="summarize a saved Chrome-trace/JSONL event log"
    )
    p_sum.add_argument("trace", help="path written via REPRO_TRACE or an exporter")
    p_sum.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="how many of the longest tasks to list (default 5)",
    )
    p_sum.add_argument(
        "--gantt", action="store_true", help="draw the ASCII schedule too"
    )
    args = parser.parse_args(argv)

    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"error: {args.trace}: no events found", file=sys.stderr)
        return 2

    blocks = [
        summarize_run(run, i, args.top, args.gantt)
        for i, run in enumerate(split_runs(events))
    ]
    try:
        print("\n\n".join(blocks))
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed early; silence the shutdown flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
