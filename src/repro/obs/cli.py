"""``python -m repro.obs`` — analyze saved runtime traces.

Sub-commands (all accept Chrome trace-event files written by
:class:`~repro.obs.export.ChromeTraceExporter` (``REPRO_TRACE=...``) and
JSONL event logs; a missing or corrupt file exits 2 with a one-line
error):

* ``summarize <trace>`` — per-run category totals, top-k tasks, load
  imbalance, the critical-path breakdown, and — when the run saw
  faults — the recovery accounting (wasted compute, retries, recovery
  tail).  ``--gantt`` adds the ASCII schedule.
* ``timeline <trace>`` — per-rank ASCII Gantt with utilization,
  queue-depth and payload-memory peaks; ``--svg FILE`` writes an SVG
  version.
* ``flamegraph <trace>`` — folded stacks over the causal DAG
  (``flamegraph.pl``-compatible; one ``t0;t4;t6 weight`` line per task).
* ``diff <base> <current>`` — what moved between two traces: makespan
  delta with critical-path (compute/network/wait) attribution, phase and
  per-task deltas, new/removed tasks, fault-recovery overhead.
* ``slo <trace> <spec.json>`` — assert declarative bounds (e.g.
  ``{"max_idle_fraction": 0.5, "max_task_seconds_p99": 0.05}``);
  exits 1 on violation.  Percentile metrics (``task_seconds_p99`` &c.)
  come from streaming quantile sketches, and a spec made entirely of
  streaming-computable metrics is evaluated in one pass without ever
  materializing the trace.
* ``trends <ledger.jsonl>`` — cross-run regression check over a
  telemetry ledger (see :mod:`repro.obs.telemetry.ledger`); exits 1
  when any metric regressed beyond the threshold vs its fingerprint's
  recent history.
* ``watch <dir|file>`` — live terminal view of an *in-flight* run
  (progress bars, per-rank state, straggler/stall alerts) from the
  status snapshots a ``live=``-armed run writes (``$REPRO_LIVE_DIR``);
  ``--once`` prints one frame and exits (headless CI mode).
* ``serve <dir|file>`` — Prometheus text-format HTTP endpoint
  (``/metrics``) over the same snapshots: run progress/ETA gauges,
  ``MetricsRegistry`` counters, sketch p50/p95/p99 summaries.
  ``--once`` prints the exposition to stdout instead of binding.

``summarize`` and ``slo`` read JSONL traces as a stream — one run's
events in memory at a time — so they scale to logs far larger than RAM.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterator

from repro.obs.critical_path import critical_path
from repro.obs.events import RUN_STARTED, Event
from repro.obs.export import iter_events, iter_runs, load_events, split_runs
from repro.obs.spans import folded_stacks, recovery_accounting
from repro.obs.telemetry.triggers import RunStreamStats


def _run_label(run: list[Event], index: int) -> str:
    for ev in run:
        if ev.type == RUN_STARTED:
            return ev.label or f"run {index}"
    return f"run {index}"


def _load(path: str) -> list[Event]:
    """Load a trace or raise ValueError with a one-line reason."""
    events = load_events(path)
    if not events:
        raise ValueError(f"{path}: no events found")
    return events


def _stream_runs(path: str) -> Iterator[list[Event]]:
    """Stream a trace one run at a time (JSONL never fully in memory).

    Raises ValueError (after yielding nothing) when the file holds no
    events, matching :func:`_load`'s contract.
    """
    n = 0
    for run in iter_runs(iter_events(path)):
        n += 1
        yield run
    if n == 0:
        raise ValueError(f"{path}: no events found")


def summarize_run(run: list[Event], index: int, top: int, show_gantt: bool) -> str:
    """Render one run's summary block."""
    # Reporting sits on the sim layer; import here keeps repro.obs
    # importable without pulling numpy at module import time.
    from repro.sim.report import (
        category_breakdown,
        gantt,
        imbalance,
        n_procs_of,
        stats_from_events,
        top_tasks,
        trace_from_events,
    )

    stats = stats_from_events(run)
    procs = n_procs_of(run)
    lines = [
        f"== {_run_label(run, index)} ({procs} procs) ==",
        f"makespan {stats.makespan:.6f}s  tasks {stats.tasks_executed}  "
        f"messages {stats.messages}  bytes {stats.bytes_sent}",
        "",
        "where the time went (all procs):",
        category_breakdown(stats),
    ]

    rows = top_tasks(run, top)
    if rows:
        lines += ["", f"top {len(rows)} tasks by compute time:"]
        lines += [
            f"  t{task:<8} {dur:.6f}s  on p{proc}" for task, dur, proc in rows
        ]

    trace = trace_from_events(run)
    if procs > 0 and trace.spans:
        lines += [
            "",
            f"load imbalance (max/mean busy): "
            f"{imbalance(trace, procs):.2f}",
        ]

    cp = critical_path(run)
    if cp.steps:
        chain = " -> ".join(f"t{t}" for t in cp.tasks[:12])
        if len(cp.tasks) > 12:
            chain += f" -> ... ({len(cp.tasks)} tasks)"
        lines += [
            "",
            f"critical path ({len(cp.steps)} tasks, "
            f"ends at {cp.makespan:.6f}s):",
            f"  {chain}",
            f"  {cp.breakdown()}",
        ]

    rec = recovery_accounting(run)
    if rec["faults_injected"] or rec["rank_deaths"]:
        lines += [
            "",
            "fault/recovery accounting:",
            f"  faults injected {rec['faults_injected']:g}  "
            f"retries {rec['task_retries']:g}  "
            f"rank deaths {rec['rank_deaths']:g}  "
            f"migrated {rec['tasks_migrated']:g}  "
            f"dropped msgs {rec['messages_dropped']:g}",
            f"  wasted compute {rec['wasted_seconds']:.6f}s  "
            f"replayed compute {rec['replayed_seconds']:.6f}s  "
            f"retry backoff {rec['retry_backoff_seconds']:.6f}s",
            f"  recovery tail {rec['recovery_tail_seconds']:.6f}s "
            f"(first fault at {rec['first_fault_time']:.6f}s)",
        ]

    if show_gantt and trace.spans and procs > 0:
        lines += ["", "schedule (# = computing):", gantt(trace, procs)]
    return "\n".join(lines)


def _cmd_summarize(args: argparse.Namespace) -> int:
    # Runs are summarized as they stream off disk: peak memory is one
    # run's events, however many runs (or gigabytes) the log holds.
    for i, run in enumerate(_stream_runs(args.trace)):
        if i:
            _print("")
        _print(summarize_run(run, i, args.top, args.gantt))
    return 0


def _select_runs(
    events: list[Event], which: int | None, path: str
) -> list[tuple[int, list[Event]]]:
    runs = split_runs(events)
    if which is None:
        return list(enumerate(runs))
    if not 0 <= which < len(runs):
        raise ValueError(
            f"{path}: run {which} out of range (file has {len(runs)})"
        )
    return [(which, runs[which])]


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs.timeline import ascii_timeline, svg_timeline

    events = _load(args.trace)
    selected = _select_runs(events, args.run, args.trace)
    blocks = []
    for i, run in selected:
        blocks.append(
            f"== {_run_label(run, i)} ==\n"
            + ascii_timeline(run, width=args.width, max_procs=args.max_procs)
        )
    _print("\n\n".join(blocks))
    if args.svg:
        # One file per selected run; a single run keeps the exact name.
        for i, run in selected:
            path = (
                args.svg
                if len(selected) == 1
                else _suffixed(args.svg, f"_run{i}")
            )
            with open(path, "w") as fp:
                fp.write(svg_timeline(run))
            print(f"wrote {path}", file=sys.stderr)
    return 0


def _suffixed(path: str, suffix: str) -> str:
    root, ext = os.path.splitext(path)
    return f"{root}{suffix}{ext}"


def _cmd_flamegraph(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    selected = _select_runs(events, args.run, args.trace)
    if args.run is None and len(selected) > 1:
        print(
            f"note: {args.trace} holds {len(selected)} runs; "
            f"using run 0 (pick one with --run)",
            file=sys.stderr,
        )
        selected = selected[:1]
    _, run = selected[0]
    lines = folded_stacks(run, weight=args.weight)
    out = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(out + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        _print(out)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import diff_traces, render_diff

    events_a = _load(args.base)
    events_b = _load(args.current)
    runs_a, runs_b = split_runs(events_a), split_runs(events_b)
    diffs = diff_traces(events_a, events_b)
    blocks = [render_diff(d, top=args.top) for d in diffs]
    if len(runs_a) != len(runs_b):
        blocks.append(
            f"note: run counts differ ({len(runs_a)} in {args.base}, "
            f"{len(runs_b)} in {args.current}); "
            f"compared the first {len(diffs)} pair(s)"
        )
    _print("\n\n".join(blocks))
    return 0


#: SLO metric extractors; spec keys are ``max_<name>`` / ``min_<name>``.
def _slo_metrics(run: list[Event]) -> dict[str, float]:
    from repro.obs.timeline import resource_timelines

    tl = resource_timelines(run)
    cp = critical_path(run)
    rec = recovery_accounting(run)
    makespan = tl.makespan
    # Percentile (and other streaming) metrics come from one sketch-backed
    # pass; they overlap the timeline-derived names below, which win.
    stats = RunStreamStats()
    for ev in run:
        stats.observe(ev)
    metrics = stats.metrics()
    metrics.update({
        "makespan": makespan,
        "idle_fraction": tl.idle_fraction(),
        "utilization_mean": tl.utilization_mean(),
        "queue_depth_peak": tl.queue_depth_peak(),
        "mem_bytes_peak": tl.mem_bytes_peak(),
        "inflight_bytes_peak": tl.inflight_bytes_peak(),
        "critical_wait_fraction": (
            cp.totals.get("wait", 0.0) / makespan if makespan > 0 else 0.0
        ),
        "critical_network_fraction": (
            cp.totals.get("network", 0.0) / makespan if makespan > 0 else 0.0
        ),
        "faults_injected": rec["faults_injected"],
        "task_retries": rec["task_retries"],
        "rank_deaths": rec["rank_deaths"],
        "wasted_seconds": rec["wasted_seconds"],
        "recovery_tail_seconds": rec["recovery_tail_seconds"],
    })
    return metrics


def eval_spec(metrics: dict[str, float], spec: dict) -> list[str]:
    """Check ``max_<name>`` / ``min_<name>`` bounds against a metric dict.

    The generic engine behind :func:`check_slo` (run-trace metrics) and
    the run service's SLO enforcement (service-level metrics): any
    metric namespace can be bounded with the same spec format.

    Returns the violations as human-readable strings (empty = pass).
    Raises ValueError for unknown spec keys.
    """
    violations = []
    for key, bound in spec.items():
        if key.startswith("max_"):
            name, is_max = key[4:], True
        elif key.startswith("min_"):
            name, is_max = key[4:], False
        else:
            raise ValueError(
                f"SLO key {key!r} must start with 'max_' or 'min_'"
            )
        if name not in metrics:
            raise ValueError(
                f"unknown SLO metric {name!r} (have: "
                f"{', '.join(sorted(metrics))})"
            )
        value = metrics[name]
        if (is_max and value > bound) or (not is_max and value < bound):
            op = ">" if is_max else "<"
            violations.append(f"{key}: {name} = {value:g} {op} {bound:g}")
    return violations


def check_slo(run: list[Event], spec: dict) -> list[str]:
    """Evaluate one run against a declarative bound spec.

    Returns the violations as human-readable strings (empty = pass).
    Raises ValueError for unknown spec keys.
    """
    return eval_spec(_slo_metrics(run), spec)


def _spec_is_streaming(spec: dict) -> bool:
    """True when every bound is over a streaming-computable metric."""
    streaming = RunStreamStats.metric_names()
    return all(
        (key.startswith(("max_", "min_")) and key[4:] in streaming)
        for key in spec
    )


def _report_slo(label: str, i: int, violations: list[str], n: int) -> bool:
    if violations:
        print(f"FAIL {label} (run {i}):")
        for v in violations:
            print(f"  {v}")
        return True
    print(f"ok   {label} (run {i}): {n} bound(s) hold")
    return False


def _cmd_slo(args: argparse.Namespace) -> int:
    try:
        with open(args.spec) as fp:
            spec = json.load(fp)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{args.spec}: not valid JSON ({exc})") from exc
    if not isinstance(spec, dict):
        raise ValueError(f"{args.spec}: SLO spec must be a JSON object")
    failed = False
    if _spec_is_streaming(spec):
        # Pure streaming pass: O(sketch buckets) memory regardless of
        # trace size — no run is ever materialized.
        stats: RunStreamStats | None = None
        label = ""
        i = 0
        seen = False

        def _finish() -> None:
            nonlocal failed, i
            failed |= _report_slo(
                label or f"run {i}", i,
                eval_spec(stats.metrics(), spec), len(spec),
            )
            i += 1

        for ev in iter_events(args.trace):
            seen = True
            if ev.type == RUN_STARTED:
                if stats is not None:
                    _finish()
                stats = RunStreamStats()
                label = ev.label
            elif stats is None:  # legacy stream without run_started
                stats = RunStreamStats()
                label = ""
            stats.observe(ev)
        if not seen:
            raise ValueError(f"{args.trace}: no events found")
        if stats is not None:
            _finish()
        return 1 if failed else 0
    for i, run in enumerate(_stream_runs(args.trace)):
        failed |= _report_slo(
            _run_label(run, i), i, check_slo(run, spec), len(spec)
        )
    return 1 if failed else 0


def _cmd_trends(args: argparse.Namespace) -> int:
    from repro.obs.telemetry.ledger import (
        Ledger,
        detect_regressions,
        render_trends,
    )

    entries = Ledger(args.ledger).read()
    if not entries:
        raise ValueError(f"{args.ledger}: empty or missing ledger")
    regressions = detect_regressions(
        entries,
        threshold=args.threshold,
        window=args.window,
        min_history=args.min_history,
        metrics=args.metric or None,
    )
    _print(
        render_trends(entries, regressions, threshold=args.threshold)
    )
    return 1 if regressions else 0


def _wait_for_status(path: str, timeout: float) -> list[str]:
    """Poll for status snapshots up to ``timeout`` seconds.

    Lets ``watch``/``serve --once`` be started *before* (or race with)
    the run they observe — the pattern CI uses.  Raises the usual
    ValueError when nothing appears in time.
    """
    import time as _time

    from repro.obs.live import find_status

    deadline = _time.monotonic() + max(0.0, timeout)
    while True:
        try:
            return find_status(path)
        except ValueError:
            if _time.monotonic() >= deadline:
                raise
            _time.sleep(0.1)


def _cmd_watch(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.live import read_status, render_status

    paths = _wait_for_status(args.status, args.timeout)
    if args.once:
        blocks = [
            render_status(read_status(p), width=args.width) for p in paths
        ]
        _print("\n\n".join(blocks))
        return 0
    try:
        while True:
            paths = _wait_for_status(args.status, args.timeout)
            blocks = []
            finished = True
            for p in paths:
                status = read_status(p)
                blocks.append(render_status(status, width=args.width))
                if status.get("state") == "running":
                    finished = False
            if not args.no_clear and sys.stdout.isatty():
                sys.stdout.write("\x1b[2J\x1b[H")
            _print("\n\n".join(blocks))
            if finished:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.live import (
        LiveMetricsServer,
        prometheus_text,
        read_status,
    )

    if args.once:
        paths = _wait_for_status(args.status, args.timeout)
        _print(prometheus_text([read_status(p) for p in paths]))
        return 0
    if not os.path.exists(args.status):
        raise ValueError(f"{args.status}: no such file or directory")
    server = LiveMetricsServer(args.status, addr=args.addr, port=args.port)
    server.start()
    print(f"serving {server.url} (Ctrl-C to stop)", flush=True)
    try:
        server.join()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _print(text: str) -> None:
    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed early; silence the shutdown flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser(
        "summarize", help="summarize a saved Chrome-trace/JSONL event log"
    )
    p_sum.add_argument("trace", help="path written via REPRO_TRACE or an exporter")
    p_sum.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="how many of the longest tasks to list (default 5)",
    )
    p_sum.add_argument(
        "--gantt", action="store_true", help="draw the ASCII schedule too"
    )
    p_sum.set_defaults(fn=_cmd_summarize)

    p_tl = sub.add_parser(
        "timeline", help="per-rank resource timeline (ASCII, optional SVG)"
    )
    p_tl.add_argument("trace")
    p_tl.add_argument(
        "--width", type=int, default=64, metavar="COLS",
        help="timeline width in characters (default 64)",
    )
    p_tl.add_argument(
        "--max-procs", type=int, default=32, metavar="N",
        help="ranks to show before eliding (default 32)",
    )
    p_tl.add_argument(
        "--run", type=int, default=None, metavar="I",
        help="only this run index (default: all runs in the file)",
    )
    p_tl.add_argument(
        "--svg", metavar="FILE", help="also write an SVG Gantt chart"
    )
    p_tl.set_defaults(fn=_cmd_timeline)

    p_fg = sub.add_parser(
        "flamegraph",
        help="folded stacks over the causal DAG (flamegraph.pl input)",
    )
    p_fg.add_argument("trace")
    p_fg.add_argument(
        "--weight", choices=("compute", "span"), default="compute",
        help="stack weight: callback seconds or start-to-end residency",
    )
    p_fg.add_argument("--run", type=int, default=None, metavar="I")
    p_fg.add_argument(
        "--output", metavar="FILE", help="write here instead of stdout"
    )
    p_fg.set_defaults(fn=_cmd_flamegraph)

    p_diff = sub.add_parser(
        "diff", help="compare two traces run-by-run (what moved, and why)"
    )
    p_diff.add_argument("base", help="baseline trace")
    p_diff.add_argument("current", help="trace to explain against the baseline")
    p_diff.add_argument(
        "--top", type=int, default=8, metavar="K",
        help="how many moved tasks/phases to list (default 8)",
    )
    p_diff.set_defaults(fn=_cmd_diff)

    p_slo = sub.add_parser(
        "slo", help="assert declarative bounds over a trace (exit 1 on breach)"
    )
    p_slo.add_argument("trace")
    p_slo.add_argument(
        "spec",
        help='JSON object of bounds, e.g. {"max_idle_fraction": 0.5}',
    )
    p_slo.set_defaults(fn=_cmd_slo)

    p_tr = sub.add_parser(
        "trends",
        help="flag cross-run metric regressions in a telemetry ledger "
        "(exit 1 on regression)",
    )
    p_tr.add_argument(
        "ledger", help="JSONL ledger written by repro.obs.telemetry.Ledger"
    )
    p_tr.add_argument(
        "--threshold", type=float, default=0.3, metavar="FRAC",
        help="relative change that counts as a regression (default 0.3)",
    )
    p_tr.add_argument(
        "--window", type=int, default=8, metavar="N",
        help="baseline window: preceding runs whose median is compared "
        "(default 8)",
    )
    p_tr.add_argument(
        "--min-history", type=int, default=1, metavar="N",
        help="minimum prior runs of a fingerprint before judging "
        "(default 1)",
    )
    p_tr.add_argument(
        "--metric", action="append", metavar="NAME",
        help="only check this metric (repeatable; default: all shared)",
    )
    p_tr.set_defaults(fn=_cmd_trends)

    p_watch = sub.add_parser(
        "watch",
        help="live terminal view of an in-flight run "
        "(status dir from live=/$REPRO_LIVE_DIR)",
    )
    p_watch.add_argument(
        "status",
        help="status directory (live-*.json) or a single status file",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (headless/CI mode)",
    )
    p_watch.add_argument(
        "--interval", type=float, default=0.5, metavar="SEC",
        help="refresh period (default 0.5)",
    )
    p_watch.add_argument(
        "--width", type=int, default=40, metavar="COLS",
        help="progress-bar width (default 40)",
    )
    p_watch.add_argument(
        "--timeout", type=float, default=0.0, metavar="SEC",
        help="wait up to SEC for the first snapshot to appear "
        "(default 0: fail immediately)",
    )
    p_watch.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )
    p_watch.set_defaults(fn=_cmd_watch)

    p_srv = sub.add_parser(
        "serve",
        help="Prometheus text endpoint (/metrics) over live status "
        "snapshots",
    )
    p_srv.add_argument(
        "status",
        help="status directory (live-*.json) or a single status file",
    )
    p_srv.add_argument(
        "--addr", default="127.0.0.1", metavar="HOST",
        help="bind address (default 127.0.0.1)",
    )
    p_srv.add_argument(
        "--port", type=int, default=9464, metavar="PORT",
        help="bind port; 0 picks a free one (default 9464)",
    )
    p_srv.add_argument(
        "--once", action="store_true",
        help="print the exposition to stdout and exit (no server)",
    )
    p_srv.add_argument(
        "--timeout", type=float, default=0.0, metavar="SEC",
        help="with --once, wait up to SEC for the first snapshot",
    )
    p_srv.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
