"""Arming the live plane, and the status-file writer behind it.

``repro.run(..., live=True)`` (or the ``REPRO_LIVE_DIR`` environment
variable) arms a run for in-flight observation: the controller gets a
:class:`~repro.obs.live.bus.LiveBus` tapped into its
:class:`~repro.obs.hub.ObsHub`, and — when a status directory is
configured — a :class:`LiveStatusWriter` thread that drains the bus
through a :class:`~repro.obs.live.progress.ProgressTracker` and writes
an atomic JSON snapshot every ``interval`` seconds.  ``python -m
repro.obs watch`` and ``serve`` read those snapshots from another
process; in-process consumers can subscribe to ``LiveRun.bus``
directly.

The gate is :func:`attach_live`: on an unarmed run it returns ``None``
before constructing *anything* — no bus, no queue, no tracker — which
is what lets ``tests/test_obs_overhead.py`` poison every constructor in
this package and still run the whole suite's unobserved paths.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

from repro.obs.live.bus import DEFAULT_QUEUE, LiveBus, Subscription
from repro.obs.live.progress import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MIN_STRAGGLER_SECONDS,
    DEFAULT_STRAGGLER_FACTOR,
    ProgressTracker,
    StragglerDetector,
)

__all__ = [
    "ENV_LIVE_DIR",
    "LiveConfig",
    "LiveRun",
    "LiveStatusWriter",
    "attach_live",
    "find_status",
    "read_status",
]

#: Arm live monitoring from the environment: any run in the process
#: writes status snapshots into this directory, no code change needed.
ENV_LIVE_DIR = "REPRO_LIVE_DIR"

#: Status filename for this process's current run.
_STATUS_TEMPLATE = "live-{pid}.json"


@dataclass(frozen=True)
class LiveConfig:
    """What a controller's live plane should do (``live=`` argument).

    Attributes:
        dir: status-snapshot directory for out-of-process watchers
            (``None`` falls back to ``$REPRO_LIVE_DIR``; with neither,
            the run still gets a bus for in-process subscribers).
        interval: seconds between status snapshots / alert checks.
        straggler_factor: flag a task running > this × its expected
            duration.
        min_straggler_seconds: never flag tasks faster than this.
        heartbeat_interval: process-pool worker beacon period.
        heartbeat_timeout: heartbeat silence that counts as a stall.
        queue: per-subscription event-queue bound.
        estimate: a :class:`repro.sched.estimate.CostEstimate` giving
            per-task expected seconds (e.g. a ``ProfiledEstimate`` from
            a previous run); None falls back to the online median.
        bus: an existing :class:`LiveBus` to publish into (in-process
            consumers subscribe before the run starts).
    """

    dir: str | None = None
    interval: float = 0.25
    straggler_factor: float = DEFAULT_STRAGGLER_FACTOR
    min_straggler_seconds: float = DEFAULT_MIN_STRAGGLER_SECONDS
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT
    queue: int = DEFAULT_QUEUE
    estimate: object = None
    bus: LiveBus | None = None

    @classmethod
    def coerce(cls, value) -> "LiveConfig | None":
        """Normalize a controller's ``live=`` argument.

        ``None``/``False`` -> None (off), ``True`` -> defaults, a path
        string -> that status directory, a dict -> kwargs, a
        :class:`LiveConfig` passes through.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(dir=value)
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            f"live must be None, bool, str, dict, or LiveConfig, "
            f"got {type(value).__name__}"
        )

    def resolved_dir(self) -> str | None:
        return self.dir or os.environ.get(ENV_LIVE_DIR) or None


class LiveStatusWriter:
    """Background thread: bus -> tracker -> atomic JSON snapshots.

    Every ``interval`` seconds it drains its subscription into the
    tracker, re-runs alert detection, and replaces ``path`` with a
    fresh snapshot (write-to-temp + ``os.replace``, so readers never
    see a torn file).  ``close`` writes one final snapshot with the
    terminal state (``finished`` or ``aborted``) before returning.
    """

    def __init__(
        self,
        path: str,
        subscription: Subscription,
        tracker: ProgressTracker,
        *,
        interval: float = 0.25,
        runtime: str = "",
        metrics=None,
        clock=None,
    ) -> None:
        self.path = path
        self.sub = subscription
        self.tracker = tracker
        self.interval = interval
        self.runtime = runtime
        self.metrics = metrics
        self._clock = clock
        self._state = "running"
        self._started_ts = time.time()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-status", daemon=True
        )

    def start(self) -> None:
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._thread.start()

    def set_clock(self, clock) -> None:
        """Install the run's clock (run-relative seconds) once known."""
        self._clock = clock

    def now(self) -> float:
        """Run-relative 'now': the run's clock, else last event time.

        The fallback covers virtual-time runs — the simulators' clocks
        only advance with events, so the freshest event *is* now.
        """
        clock = self._clock
        if clock is not None:
            return clock()
        return self.tracker.last_event_t

    def _pump(self) -> None:
        tracker = self.tracker
        for ev in self.sub.drain():
            tracker.observe(ev)
        tracker.check(self.now())

    def _write(self) -> None:
        doc = {
            "pid": os.getpid(),
            "runtime": self.runtime,
            "state": self._state,
            "started_ts": self._started_ts,
            "updated_ts": time.time(),
            "dropped": self.sub.dropped,
            **self.tracker.snapshot(self.now()),
        }
        if self.metrics is not None:
            try:
                doc["metrics"] = self.metrics.snapshot().to_dict()
            except Exception:
                # A half-updated registry must never kill the monitor;
                # the next tick retries.
                pass
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w") as fp:
                json.dump(doc, fp)
            os.replace(tmp, self.path)
        except OSError:
            pass  # a full disk should not take the run down

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._pump()
            self._write()
        self._pump()
        self._write()

    def close(self, state: str = "finished") -> None:
        """Stop the thread and write the terminal snapshot."""
        self._state = state
        self._stop.set()
        self._thread.join(timeout=max(2.0, self.interval * 8))
        if self._thread.is_alive():  # wedged writer: last-resort snapshot
            self._write()


class LiveRun:
    """Per-run handle returned by :func:`attach_live` (or ``None``).

    ``bus`` is what the controller publishes into (and what in-process
    consumers subscribe to); ``close`` tears the writer down, stamping
    the terminal state into the last snapshot.
    """

    def __init__(
        self,
        bus: LiveBus,
        writer: LiveStatusWriter | None,
        config: LiveConfig,
    ) -> None:
        self.bus = bus
        self.writer = writer
        self.config = config

    def set_clock(self, clock) -> None:
        if self.writer is not None:
            self.writer.set_clock(clock)

    def close(self, state: str = "finished") -> None:
        if self.writer is not None:
            self.writer.close(state)


def attach_live(
    value,
    *,
    total: int,
    runtime: str,
    n_ranks: int = 0,
    graph=None,
    metrics=None,
    clock=None,
) -> LiveRun | None:
    """Arm the live plane for one run, or return ``None`` untouched.

    This is the zero-cost gate: with ``live`` unset and no
    ``$REPRO_LIVE_DIR``, nothing in :mod:`repro.obs.live` is ever
    constructed.  Otherwise returns a :class:`LiveRun` whose bus the
    controller taps into its hub, with a status writer when a snapshot
    directory is configured.
    """
    cfg = LiveConfig.coerce(value)
    if cfg is None:
        env = os.environ.get(ENV_LIVE_DIR)
        if not env:
            return None
        cfg = LiveConfig(dir=env)
    bus = cfg.bus if cfg.bus is not None else LiveBus()
    writer = None
    status_dir = cfg.resolved_dir()
    if status_dir:
        estimates = None
        if cfg.estimate is not None and graph is not None:
            estimates = {
                tid: max(0.0, cfg.estimate.compute_seconds(graph.task(tid)))
                for tid in graph.task_ids()
            }
        tracker = ProgressTracker(
            total,
            n_ranks,
            detector=StragglerDetector(
                estimates,
                factor=cfg.straggler_factor,
                min_seconds=cfg.min_straggler_seconds,
            ),
            heartbeat_timeout=cfg.heartbeat_timeout,
        )
        path = os.path.join(
            status_dir, _STATUS_TEMPLATE.format(pid=os.getpid())
        )
        writer = LiveStatusWriter(
            path,
            bus.subscribe(cfg.queue),
            tracker,
            interval=cfg.interval,
            runtime=runtime,
            metrics=metrics,
            clock=clock,
        )
        writer.start()
    return LiveRun(bus, writer, cfg)


# ---------------------------------------------------------------------- #
# Reading status files (the watch/serve side)
# ---------------------------------------------------------------------- #


def read_status(path: str) -> dict:
    """Load one status snapshot; ValueError on a corrupt file."""
    try:
        with open(path) as fp:
            return json.load(fp)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: corrupt status file ({exc})") from exc


def find_status(path: str) -> list[str]:
    """Status files behind a path: the file itself, or ``dir/live-*.json``.

    Raises ValueError when the path holds no snapshots (the CLI's
    missing-input exit-2 contract).
    """
    if os.path.isfile(path):
        return [path]
    if os.path.isdir(path):
        found = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.startswith("live-") and name.endswith(".json")
        )
        if found:
            return found
        raise ValueError(f"{path}: no live status snapshots (live-*.json)")
    raise ValueError(f"{path}: no such file or directory")
