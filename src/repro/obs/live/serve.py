"""Prometheus text exposition of live status snapshots (``obs serve``).

:func:`prometheus_text` renders a list of status dicts (the writer's
snapshots) in the Prometheus text format (version 0.0.4):
run-level gauges (progress, ETA, running/queued tasks), the run's
:class:`~repro.obs.metrics.MetricsRegistry` counters and gauges, and
telemetry sketches as summaries with p50/p95/p99 quantile samples.
:class:`LiveMetricsServer` is a stdlib ``ThreadingHTTPServer`` serving
that text on ``/metrics``, re-reading the snapshots on every scrape so
an in-flight run's numbers move between scrapes.
"""

from __future__ import annotations

import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.live.status import find_status, read_status

__all__ = ["CONTENT_TYPE", "LiveMetricsServer", "prometheus_text"]

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _name(raw: str) -> str:
    """Sanitize a metric name to the Prometheus grammar."""
    clean = _NAME_OK.sub("_", raw)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _labels(base: dict[str, str], **extra: str) -> str:
    items = {**base, **extra}
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in items.items())
    return "{" + inner + "}"


class _Families:
    """Accumulates samples grouped by family (HELP/TYPE emitted once)."""

    def __init__(self) -> None:
        self._order: list[str] = []
        self._meta: dict[str, tuple[str, str]] = {}
        self._samples: dict[str, list[str]] = {}

    def add(
        self,
        family: str,
        kind: str,
        help_: str,
        labels: str,
        value,
        suffix: str = "",
    ) -> None:
        if value is None:
            return
        if family not in self._meta:
            self._order.append(family)
            self._meta[family] = (kind, help_)
            self._samples[family] = []
        self._samples[family].append(f"{family}{suffix}{labels} {value:g}")

    def render(self) -> str:
        lines: list[str] = []
        for family in self._order:
            kind, help_ = self._meta[family]
            lines.append(f"# HELP {family} {help_}")
            lines.append(f"# TYPE {family} {kind}")
            lines.extend(self._samples[family])
        return "\n".join(lines) + "\n"


def _registry_families(fam: "_Families", base: dict, lbl: str, status: dict) -> None:
    """Emit a snapshot's embedded MetricsRegistry (shared by runs and
    services)."""
    metrics = status.get("metrics") or {}
    for name, value in sorted((metrics.get("counters") or {}).items()):
        fam.add(
            f"repro_{_name(name)}_total", "counter",
            f"MetricsRegistry counter {name}.", lbl, value,
        )
    for name, value in sorted((metrics.get("gauges") or {}).items()):
        fam.add(
            f"repro_{_name(name)}", "gauge",
            f"MetricsRegistry gauge {name}.", lbl, value,
        )
    for name, sk in sorted((metrics.get("sketches") or {}).items()):
        family = f"repro_{_name(name)}"
        help_ = f"Telemetry quantile sketch {name}."
        for q_label, q_key in (
            ("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"),
        ):
            fam.add(
                family, "summary", help_,
                _labels(base, quantile=q_label), sk.get(q_key),
            )
        fam.add(family, "summary", help_, lbl, sk.get("total"),
                suffix="_sum")
        fam.add(family, "summary", help_, lbl, sk.get("count"),
                suffix="_count")


def _service_families(fam: "_Families", status: dict) -> None:
    """Emit the ``repro_service_*`` families of one service snapshot."""
    base = {
        "service": status.get("name", "service"),
        "pid": str(status.get("pid", "")),
    }
    lbl = _labels(base)
    fam.add(
        "repro_service_info", "gauge",
        "Service identity; the state label carries the lifecycle phase.",
        _labels(base, state=status.get("state", "running")), 1.0,
    )
    fam.add(
        "repro_service_workers", "gauge", "Controller slots in the pool.",
        lbl, status.get("workers"),
    )
    fam.add(
        "repro_service_queue_depth", "gauge",
        "Requests queued (admitted, not yet running).",
        lbl, status.get("queue_depth"),
    )
    fam.add(
        "repro_service_queue_max", "gauge", "Queue capacity bound.",
        lbl, status.get("queue_max"),
    )
    fam.add(
        "repro_service_running", "gauge", "Requests executing right now.",
        lbl, status.get("running"),
    )
    for counter, help_ in (
        ("submitted", "Submissions received (admitted or not)."),
        ("admitted", "Submissions admitted to the queue."),
        ("completed", "Handles resolved successfully."),
        ("errors", "Handles resolved with an execution error."),
        ("cancelled", "Queued handles withdrawn by their submitter."),
        ("rejected", "Submissions rejected at admission."),
        ("dedup_hits", "Submissions coalesced onto an in-flight twin."),
        ("runs_executed", "Distinct executions performed."),
        ("slo_breaches", "Distinct SLO violations observed."),
    ):
        fam.add(
            f"repro_service_{counter}_total", "counter", help_,
            lbl, status.get(counter),
        )
    for reason, n in sorted((status.get("rejected_by_reason") or {}).items()):
        fam.add(
            "repro_service_rejected_by_reason_total", "counter",
            "Rejections by admission reason.",
            _labels(base, reason=reason), n,
        )
    cache = status.get("cache") or {}
    for key, help_ in (
        ("plan_hits", "Requests that found a warm compiled plan."),
        ("plan_misses", "Requests that compiled a plan cold."),
        ("graph_hits", "Requests served a shared materialized graph."),
        ("graph_misses", "Requests that materialized a graph."),
    ):
        fam.add(
            f"repro_service_cache_{key}_total", "counter",
            help_, lbl, cache.get(key),
        )
    for tenant, st in sorted((status.get("tenants") or {}).items()):
        t_lbl_args = {"tenant": tenant}
        for key, kind in (
            ("queued", "gauge"),
            ("outstanding", "gauge"),
            ("submitted", "counter"),
            ("completed", "counter"),
            ("rejected", "counter"),
            ("dedup", "counter"),
        ):
            suffix = "_total" if kind == "counter" else ""
            fam.add(
                f"repro_service_tenant_{key}{suffix}", kind,
                f"Per-tenant {key}.",
                _labels(base, **t_lbl_args), st.get(key),
            )
    _registry_families(fam, base, lbl, status)


def prometheus_text(statuses: list[dict]) -> str:
    """Render status snapshots as a Prometheus exposition document."""
    fam = _Families()
    fam.add(
        "repro_live_runs", "gauge", "Live status snapshots visible.",
        "", float(len(statuses)),
    )
    for status in statuses:
        if status.get("kind") == "service":
            _service_families(fam, status)
            continue
        base = {
            "run": status.get("run") or status.get("runtime") or "run",
            "pid": str(status.get("pid", "")),
        }
        lbl = _labels(base)
        fam.add(
            "repro_run_info", "gauge",
            "Run identity; the state label carries the lifecycle phase.",
            _labels(base, state=status.get("state", "running"),
                    runtime=status.get("runtime", "")),
            1.0,
        )
        fam.add(
            "repro_run_progress_ratio", "gauge",
            "Completed fraction of the run's tasks.",
            lbl, status.get("progress"),
        )
        fam.add(
            "repro_run_tasks", "gauge", "Total tasks in the run.",
            lbl, status.get("total"),
        )
        fam.add(
            "repro_run_tasks_done", "gauge", "Tasks completed so far.",
            lbl, status.get("done"),
        )
        fam.add(
            "repro_run_tasks_running", "gauge",
            "Task attempts on a core right now.",
            lbl, float(len(status.get("running", []))),
        )
        fam.add(
            "repro_run_tasks_queued", "gauge",
            "Tasks ready but not yet dispatched.",
            lbl, status.get("queued"),
        )
        fam.add(
            "repro_run_eta_seconds", "gauge",
            "Estimated seconds to completion (absent before first task).",
            lbl, status.get("eta"),
        )
        fam.add(
            "repro_run_elapsed_seconds", "gauge",
            "Run-relative time of this snapshot.",
            lbl, status.get("t"),
        )
        fam.add(
            "repro_run_messages_total", "counter",
            "Dataflow messages routed so far.",
            lbl, status.get("messages"),
        )
        fam.add(
            "repro_run_bytes_sent_total", "counter",
            "Dataflow payload bytes routed so far.",
            lbl, status.get("bytes_sent"),
        )
        fam.add(
            "repro_run_faults_total", "counter",
            "Faults injected so far.", lbl, status.get("faults"),
        )
        fam.add(
            "repro_run_retries_total", "counter",
            "Attempt retries so far.", lbl, status.get("retries"),
        )
        fam.add(
            "repro_live_dropped_events_total", "counter",
            "Events the live queue evicted (monitor fell behind).",
            lbl, status.get("dropped"),
        )
        alerts: dict[str, int] = {}
        for alert in status.get("alerts", []):
            alerts[alert["kind"]] = alerts.get(alert["kind"], 0) + 1
        for kind in ("straggler", "stall"):
            fam.add(
                "repro_run_alerts", "gauge",
                "Standing alerts by kind.",
                _labels(base, kind=kind), float(alerts.get(kind, 0)),
            )
        _registry_families(fam, base, lbl, status)
    return fam.render()


class LiveMetricsServer:
    """``/metrics`` over stdlib HTTP, re-reading snapshots per scrape.

    ``path`` is a status file or directory (missing snapshots scrape as
    ``repro_live_runs 0`` rather than erroring — the run may simply not
    have started yet).  ``port=0`` binds an ephemeral port, exposed as
    ``.port`` after construction.
    """

    def __init__(self, path: str, addr: str = "127.0.0.1", port: int = 0):
        status_path = path

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                route = self.path.split("?", 1)[0]
                if route in ("/", "/metrics"):
                    body = prometheus_text(
                        _load_statuses(status_path)
                    ).encode()
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif route == "/healthz":
                    self.send_response(200)
                    self.send_header("Content-Length", "3")
                    self.end_headers()
                    self.wfile.write(b"ok\n")
                else:
                    self.send_error(404)

            def log_message(self, *args) -> None:  # silence per-scrape spam
                pass

        self._httpd = ThreadingHTTPServer((addr, port), Handler)
        self._httpd.daemon_threads = True
        self.addr = addr
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-live-serve",
            daemon=True,
        )

    @property
    def url(self) -> str:
        return f"http://{self.addr}:{self.port}/metrics"

    def start(self) -> None:
        self._thread.start()

    def join(self) -> None:
        self._thread.join()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()


def _load_statuses(path: str) -> list[dict]:
    """Tolerant snapshot loader for the scrape path: skip what's broken."""
    if not os.path.exists(path):
        return []
    try:
        paths = find_status(path)
    except ValueError:
        return []
    out = []
    for p in paths:
        try:
            out.append(read_status(p))
        except (OSError, ValueError):
            continue
    return out
