"""Live observability: watch a run while it is still running.

Everything else in :mod:`repro.obs` is post-hoc — events are collected,
then summarized after ``repro.run`` returns.  This package observes
*in-flight* runs:

* :class:`LiveBus` / :class:`Subscription` — a thread-safe, bounded,
  drop-counting pub/sub channel tapped into the run's
  :class:`~repro.obs.hub.ObsHub`.  Worker-side liveness flows on it as
  live-only events (:data:`~repro.obs.events.TASK_RUNNING`,
  :data:`~repro.obs.events.WORKER_HEARTBEAT`) that never reach sinks,
  so recorded traces and goldens are unchanged.
* :class:`ProgressTracker` / :class:`StragglerDetector` — fold the
  stream into per-rank progress, ETA, and straggler/stall alerts,
  using the planner's cost estimates when available.
* :func:`attach_live` / :class:`LiveConfig` — the arming gate
  (``repro.run(..., live=True)`` or ``$REPRO_LIVE_DIR``); unarmed runs
  construct none of this (the zero-cost contract).
* :class:`LiveStatusWriter` — atomic JSON status snapshots for
  out-of-process watchers: ``python -m repro.obs watch`` (terminal
  view, :func:`render_status`) and ``python -m repro.obs serve``
  (Prometheus text endpoint, :func:`prometheus_text`).

See ``docs/observability.md`` ("Live monitoring") for the full tour.
"""

from repro.obs.live.bus import DEFAULT_QUEUE, LiveBus, Subscription
from repro.obs.live.progress import (
    Alert,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MIN_STRAGGLER_SECONDS,
    DEFAULT_STRAGGLER_FACTOR,
    ProgressTracker,
    StragglerDetector,
)
from repro.obs.live.serve import (
    CONTENT_TYPE,
    LiveMetricsServer,
    prometheus_text,
)
from repro.obs.live.status import (
    ENV_LIVE_DIR,
    LiveConfig,
    LiveRun,
    LiveStatusWriter,
    attach_live,
    find_status,
    read_status,
)
from repro.obs.live.watch import render_status

__all__ = [
    "Alert",
    "CONTENT_TYPE",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_MIN_STRAGGLER_SECONDS",
    "DEFAULT_QUEUE",
    "DEFAULT_STRAGGLER_FACTOR",
    "ENV_LIVE_DIR",
    "LiveBus",
    "LiveConfig",
    "LiveMetricsServer",
    "LiveRun",
    "LiveStatusWriter",
    "ProgressTracker",
    "StragglerDetector",
    "Subscription",
    "attach_live",
    "find_status",
    "prometheus_text",
    "read_status",
    "render_status",
]
