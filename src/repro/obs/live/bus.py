"""LiveBus: the thread-safe fan-out behind in-flight observability.

A :class:`LiveBus` carries a run's event stream to subscribers *while
the run executes*: the controller's coordinator thread (and, in process
mode, a drainer thread relaying worker heartbeats) publishes, and any
number of monitor threads — the status writer, an interactive UI, a
test — each own a :class:`Subscription` they drain at their leisure.

Design constraints, in order:

* **Never hurt the run.**  ``publish`` takes one per-subscription lock,
  appends to a bounded deque, and returns; it cannot block on a slow
  consumer and it never raises into the controller.  When a queue is
  full the *oldest* event is dropped and counted — a live view wants
  the present, not the past, and the drop counter keeps the loss
  honest.
* **Zero cost when nobody subscribes.**  A run that is not being
  watched never constructs a bus at all (see
  :func:`repro.obs.live.attach_live`); the poison guards in
  ``tests/test_obs_overhead.py`` enforce it the same way they do for
  events and telemetry.
* **Lock-free publish against the subscriber list.**  Subscriptions are
  held in an immutable tuple swapped under a lock on (un)subscribe, so
  ``publish`` iterates a plain tuple snapshot with no list lock.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.events import Event

__all__ = ["LiveBus", "Subscription", "DEFAULT_QUEUE"]

#: Default per-subscription queue bound, in events.  Deep enough that a
#: 4 Hz drain loop keeps up with tens of thousands of events per second;
#: small enough that an abandoned subscription stays O(queue) memory.
DEFAULT_QUEUE = 4096


class Subscription:
    """One subscriber's bounded, thread-safe event queue.

    Obtained from :meth:`LiveBus.subscribe`; drained with
    :meth:`drain`.  ``dropped`` counts events evicted because the queue
    was full when they arrived — an exact tally, surfaced in live
    status snapshots and the Prometheus exposition so consumers know
    when their view is lossy.
    """

    __slots__ = ("maxlen", "dropped", "closed", "_q", "_lock")

    def __init__(self, maxlen: int = DEFAULT_QUEUE) -> None:
        if maxlen < 1:
            raise ValueError(f"queue bound must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self.dropped = 0
        self.closed = False
        self._q: deque[Event] = deque()
        self._lock = threading.Lock()

    def offer(self, event: Event) -> None:
        """Enqueue one event, evicting the oldest when full."""
        with self._lock:
            if self.closed:
                return
            if len(self._q) >= self.maxlen:
                self._q.popleft()
                self.dropped += 1
            self._q.append(event)

    def drain(self, max_events: int | None = None) -> list[Event]:
        """Pop queued events (oldest first); empty list when idle."""
        with self._lock:
            if max_events is None or len(self._q) <= max_events:
                out = list(self._q)
                self._q.clear()
            else:
                out = [self._q.popleft() for _ in range(max_events)]
        return out

    def close(self) -> None:
        """Stop accepting events and release the queue (idempotent)."""
        with self._lock:
            self.closed = True
            self._q.clear()

    def __len__(self) -> int:
        return len(self._q)


class LiveBus:
    """Thread-safe pub/sub fan-out for one (or more) in-flight runs.

    Publishers call :meth:`publish` from any thread; each subscriber
    drains its own :class:`Subscription`.  The bus itself holds no
    events — all buffering lives in the per-subscriber queues.
    """

    __slots__ = ("_subs", "_lock")

    def __init__(self) -> None:
        self._subs: tuple[Subscription, ...] = ()
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """True when at least one subscription is attached."""
        return bool(self._subs)

    def subscribe(self, maxlen: int = DEFAULT_QUEUE) -> Subscription:
        sub = Subscription(maxlen)
        with self._lock:
            self._subs = self._subs + (sub,)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach and close one subscription (idempotent)."""
        sub.close()
        with self._lock:
            self._subs = tuple(s for s in self._subs if s is not sub)

    def publish(self, event: Event) -> None:
        """Offer one event to every current subscriber (never blocks)."""
        for sub in self._subs:
            sub.offer(event)
