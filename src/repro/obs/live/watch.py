"""Terminal rendering of live status snapshots (``obs watch``).

Pure functions from a status dict (see
:meth:`~repro.obs.live.progress.ProgressTracker.snapshot` plus the
writer's envelope) to text — the CLI loop lives in
:mod:`repro.obs.cli`.
"""

from __future__ import annotations

__all__ = ["render_status", "render_service_status"]


def _bar(fraction: float, width: int) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def _seconds(value: float | None) -> str:
    if value is None:
        return "?"
    if value >= 90:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def _bytes(n: int) -> str:
    for unit in ("B", "kB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GB"  # pragma: no cover - loop always returns


def render_service_status(status: dict, width: int = 40) -> str:
    """A run-service snapshot (``"kind": "service"``) as a text block."""
    name = status.get("name", "service")
    state = status.get("state", "running")
    pid = status.get("pid", "?")
    depth = status.get("queue_depth", 0)
    q_max = status.get("queue_max", 0)
    fill = depth / q_max if q_max else 0.0
    rejected = status.get("rejected_by_reason", {})
    cache = status.get("cache", {})
    lines = [
        f"== {name} (pid {pid}) [{state}] ==",
        (
            f"queue [{_bar(fill, width)}] {depth}/{q_max}  "
            f"running {status.get('running', 0)}/"
            f"{status.get('workers', 0)} workers"
        ),
        (
            f"submitted {status.get('submitted', 0)}  "
            f"completed {status.get('completed', 0)}  "
            f"errors {status.get('errors', 0)}  "
            f"cancelled {status.get('cancelled', 0)}  "
            f"dedup {status.get('dedup_hits', 0)}  "
            f"executed {status.get('runs_executed', 0)}"
        ),
        (
            f"rejected {status.get('rejected', 0)} "
            f"(quota {rejected.get('tenant-quota', 0)}, "
            f"queue-full {rejected.get('queue-full', 0)})  "
            f"plan cache {cache.get('plan_hits', 0)}h/"
            f"{cache.get('plan_misses', 0)}m  "
            f"graph cache {cache.get('graph_hits', 0)}h/"
            f"{cache.get('graph_misses', 0)}m"
        ),
    ]
    tenants = status.get("tenants", {})
    if tenants:
        lines.append("tenants:")
        for tenant in sorted(tenants):
            s = tenants[tenant]
            quota = s.get("quota")
            quota_txt = f"/{quota}" if quota is not None else ""
            lines.append(
                f"  {tenant:<12} queued {s.get('queued', 0):<4} "
                f"outstanding {s.get('outstanding', 0)}{quota_txt:<6} "
                f"submitted {s.get('submitted', 0):<5} "
                f"completed {s.get('completed', 0):<5} "
                f"rejected {s.get('rejected', 0):<4} "
                f"dedup {s.get('dedup', 0)}"
            )
    alerts = status.get("alerts", [])
    if alerts:
        lines.append("alerts:")
        for a in alerts[-8:]:
            lines.append(f"  [{a['t']:8.2f}s] {a['kind']}: {a['message']}")
    sketches = (status.get("metrics") or {}).get("sketches") or {}
    for name, sk in sorted(sketches.items()):
        lines.append(
            f"{name}: n={sk.get('count', 0)} p50={sk.get('p50', 0):.3g} "
            f"p95={sk.get('p95', 0):.3g} p99={sk.get('p99', 0):.3g}"
        )
    return "\n".join(lines)


def render_status(status: dict, width: int = 40) -> str:
    """One snapshot as a multi-line terminal block."""
    if status.get("kind") == "service":
        return render_service_status(status, width)
    run = status.get("run") or status.get("runtime") or "run"
    state = status.get("state", "running")
    pid = status.get("pid", "?")
    total = status.get("total", 0)
    done = status.get("done", 0)
    progress = status.get("progress", 0.0)
    lines = [
        f"== {run} (pid {pid}) [{state}] ==",
        (
            f"[{_bar(progress, width)}] {progress:6.1%}  "
            f"{done}/{total} tasks  eta {_seconds(status.get('eta'))}  "
            f"t={status.get('t', 0.0):.1f}s"
        ),
        (
            f"queued {status.get('queued', 0)}  "
            f"messages {status.get('messages', 0)}  "
            f"bytes {_bytes(status.get('bytes_sent', 0))}  "
            f"faults {status.get('faults', 0)}  "
            f"retries {status.get('retries', 0)}  "
            f"dropped {status.get('dropped', 0)}"
        ),
    ]
    ranks = status.get("ranks", [])
    if ranks:
        # Per-rank completion bars, scaled to the busiest rank so the
        # imbalance is the thing the eye catches.
        top = max((r["done"] for r in ranks), default=0) or 1
        lines.append("ranks:")
        for r in ranks[:32]:
            hb = r.get("heartbeat_age")
            hb_txt = f"  hb {hb:.1f}s ago" if hb is not None else ""
            run_txt = f"  running {r['running']}" if r.get("running") else ""
            lines.append(
                f"  r{r['rank']:<3} [{_bar(r['done'] / top, 16)}] "
                f"done {r['done']}{run_txt}{hb_txt}"
            )
        if len(ranks) > 32:
            lines.append(f"  ... {len(ranks) - 32} more ranks")
    running = status.get("running", [])
    if running:
        lines.append("running tasks:")
        straggler_tasks = {
            a["task"]
            for a in status.get("alerts", [])
            if a["kind"] == "straggler"
        }
        for r in running[:8]:
            expected = r.get("expected")
            exp_txt = (
                f"  (expected {expected:.3g}s)" if expected is not None else ""
            )
            mark = "  ** straggler" if r["task"] in straggler_tasks else ""
            lines.append(
                f"  t{r['task']:<6} rank {r['rank']:<3} "
                f"{r['elapsed']:.2f}s{exp_txt}{mark}"
            )
        if len(running) > 8:
            lines.append(f"  ... {len(running) - 8} more in flight")
    alerts = status.get("alerts", [])
    if alerts:
        lines.append("alerts:")
        for a in alerts[-8:]:
            lines.append(f"  [{a['t']:8.2f}s] {a['kind']}: {a['message']}")
    sketches = (status.get("metrics") or {}).get("sketches") or {}
    for name, sk in sorted(sketches.items()):
        lines.append(
            f"{name}: n={sk.get('count', 0)} p50={sk.get('p50', 0):.3g} "
            f"p95={sk.get('p95', 0):.3g} p99={sk.get('p99', 0):.3g}"
        )
    return "\n".join(lines)
