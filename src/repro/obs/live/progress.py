"""Fold a live event stream into progress, ETA, and alerts.

:class:`ProgressTracker` is the reducer between the raw
:class:`~repro.obs.live.bus.LiveBus` stream and everything a human (or
scraper) wants to know about an in-flight run: how far along it is,
when it will finish, which tasks are on a core right now, and whether
anything looks wrong.  "Wrong" is judged by a
:class:`StragglerDetector` — a task running longer than ``k×`` its
expected duration — and by worker-heartbeat silence.

Expected durations come from the same cost estimates the planner uses
(:class:`repro.sched.estimate.CostEstimate`, e.g. a
:class:`~repro.sched.estimate.ProfiledEstimate` mined from a previous
run); without one, the detector falls back to the online median of the
durations it has already seen, so a lone slow task still stands out
against its siblings.

All timestamps are *run-relative seconds* on whatever clock the run
uses — wall seconds since run start for the ``local`` backend, virtual
seconds for the simulated ones (their replay flows through the same
bus, so a virtual-time run is watchable with the same machinery).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import (
    FAULT_INJECTED,
    MESSAGE_SENT,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_RETRY,
    TASK_RUNNING,
    TASK_STARTED,
    WORKER_HEARTBEAT,
    Event,
)

__all__ = [
    "Alert",
    "ProgressTracker",
    "StragglerDetector",
    "DEFAULT_STRAGGLER_FACTOR",
    "DEFAULT_MIN_STRAGGLER_SECONDS",
    "DEFAULT_HEARTBEAT_TIMEOUT",
]

#: A task is a straggler when it has been running longer than
#: ``factor × expected`` seconds.
DEFAULT_STRAGGLER_FACTOR = 4.0
#: ...but never flag anything faster than this, whatever the estimate:
#: tiny tasks jitter by multiples of themselves on a busy host.
DEFAULT_MIN_STRAGGLER_SECONDS = 0.05
#: Heartbeat silence (seconds) before a worker counts as stalled.
DEFAULT_HEARTBEAT_TIMEOUT = 5.0

#: Failed attempts carry this label suffix in both the local and the
#: simulated backends; their ``task_finished`` events are wasted work,
#: not progress.
_FAILED_SUFFIX = "(failed attempt)"

#: Cap on the completed-duration sample backing the online median.
_MEDIAN_SAMPLE = 1024


@dataclass(frozen=True)
class Alert:
    """One detector finding, sticky for the rest of the run.

    ``kind`` is ``"straggler"`` (a task exceeded its threshold) or
    ``"stall"`` (a worker went heartbeat-silent).  ``seconds`` is the
    observed elapsed/silent time when the alert fired, ``threshold``
    the bound it crossed.
    """

    kind: str
    t: float
    task: int = -1
    rank: int = -1
    seconds: float = 0.0
    threshold: float = 0.0
    message: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t": self.t,
            "task": self.task,
            "rank": self.rank,
            "seconds": self.seconds,
            "threshold": self.threshold,
            "message": self.message,
        }


class StragglerDetector:
    """Expected-duration oracle: planned estimates, then online median.

    ``estimates`` maps task id -> expected compute seconds (typically
    built from a :class:`~repro.sched.estimate.CostEstimate` at arm
    time).  Tasks without an estimate are judged against the median of
    the durations completed so far; with no information at all the
    detector abstains (returns ``None``) rather than guess.
    """

    def __init__(
        self,
        estimates: dict[int, float] | None = None,
        factor: float = DEFAULT_STRAGGLER_FACTOR,
        min_seconds: float = DEFAULT_MIN_STRAGGLER_SECONDS,
    ) -> None:
        self.estimates = dict(estimates) if estimates else {}
        self.factor = factor
        self.min_seconds = min_seconds
        self._sample: list[float] = []

    def observe_completed(self, dur: float) -> None:
        """Feed one successfully completed task's compute seconds."""
        if len(self._sample) < _MEDIAN_SAMPLE:
            self._sample.append(dur)

    def expected(self, task: int) -> float | None:
        """Expected compute seconds for ``task`` (None = no basis)."""
        est = self.estimates.get(task)
        if est is not None:
            return est
        if self._sample:
            s = sorted(self._sample)
            return s[len(s) // 2]
        return None

    def threshold(self, task: int) -> float | None:
        """Running time beyond which ``task`` counts as a straggler."""
        expected = self.expected(task)
        if expected is None:
            return None
        return max(self.factor * expected, self.min_seconds)


class ProgressTracker:
    """Streaming reducer over a run's live event stream.

    Feed events (in arrival order) with :meth:`observe`, ask for alert
    re-evaluation with :meth:`check`, and render the whole state as a
    JSON-able dict with :meth:`snapshot`.  Not thread-safe by itself —
    drive it from one consumer thread (the
    :class:`~repro.obs.live.status.LiveStatusWriter` does).
    """

    def __init__(
        self,
        total: int,
        n_ranks: int = 0,
        *,
        detector: StragglerDetector | None = None,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    ) -> None:
        self.total = total
        self.n_ranks = n_ranks
        self.detector = detector if detector is not None else StragglerDetector()
        self.heartbeat_timeout = heartbeat_timeout
        self.run_label = ""
        self.finished = False
        self.makespan: float | None = None
        self.queued = 0
        self.messages = 0
        self.bytes_sent = 0
        self.faults = 0
        self.retries = 0
        self.last_event_t = 0.0
        #: task id -> (rank, start t) of attempts on a core right now.
        self.running: dict[int, tuple[int, float]] = {}
        #: rank -> last heartbeat t (only process-pool workers beat).
        self.heartbeats: dict[int, float] = {}
        self.rank_done: dict[int, int] = {}
        self._done: set[int] = set()
        #: expected-seconds already completed (drives the weighted ETA).
        self._done_expected = 0.0
        #: (kind, key) -> Alert; stragglers stay forever, stalls clear
        #: when the worker's heartbeat resumes.
        self._alerts: dict[tuple[str, int], Alert] = {}

    # ------------------------------------------------------------------ #
    # Event folding
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> int:
        return len(self._done)

    def observe(self, ev: Event) -> None:
        """Fold one event into the state (events in arrival order)."""
        if ev.t > self.last_event_t:
            self.last_event_t = ev.t
        kind = ev.type
        if kind == TASK_RUNNING or kind == TASK_STARTED:
            if ev.task not in self._done:
                self.running[ev.task] = (ev.proc, ev.t)
                if self.queued:
                    self.queued -= 1
        elif kind == TASK_FINISHED:
            self.running.pop(ev.task, None)
            if not ev.label.endswith(_FAILED_SUFFIX):
                if ev.task not in self._done:
                    self._done.add(ev.task)
                    self.rank_done[ev.proc] = self.rank_done.get(ev.proc, 0) + 1
                    self.detector.observe_completed(ev.dur)
                    expected = self.detector.estimates.get(ev.task)
                    if expected is not None:
                        self._done_expected += expected
        elif kind == TASK_ENQUEUED:
            self.queued += 1
        elif kind == MESSAGE_SENT:
            self.messages += 1
            self.bytes_sent += ev.nbytes
        elif kind == WORKER_HEARTBEAT:
            prev = self.heartbeats.get(ev.proc)
            if prev is None or ev.t > prev:
                self.heartbeats[ev.proc] = ev.t
        elif kind == RUN_STARTED:
            self.run_label = ev.label
        elif kind == RUN_FINISHED:
            self.finished = True
            self.makespan = ev.dur
            self.running.clear()
        elif kind == FAULT_INJECTED:
            self.faults += 1
        elif kind == TASK_RETRY:
            self.retries += 1

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #

    def check(self, now: float) -> list[Alert]:
        """Re-evaluate alerts at time ``now``; returns the *new* ones."""
        fresh: list[Alert] = []
        det = self.detector
        for task, (rank, since) in self.running.items():
            key = ("straggler", task)
            if key in self._alerts:
                continue
            elapsed = now - since
            threshold = det.threshold(task)
            if threshold is not None and elapsed > threshold:
                expected = det.expected(task)
                alert = Alert(
                    "straggler", now, task=task, rank=rank,
                    seconds=elapsed, threshold=threshold,
                    message=(
                        f"task {task} running {elapsed:.3g}s on rank "
                        f"{rank} > {threshold:.3g}s "
                        f"({det.factor:g}x expected {expected:.3g}s)"
                    ),
                )
                self._alerts[key] = alert
                fresh.append(alert)
        if not self.finished:
            for rank, last in self.heartbeats.items():
                key = ("stall", rank)
                silent = now - last
                if silent > self.heartbeat_timeout:
                    if key not in self._alerts:
                        alert = Alert(
                            "stall", now, rank=rank, seconds=silent,
                            threshold=self.heartbeat_timeout,
                            message=(
                                f"worker {rank}: no heartbeat for "
                                f"{silent:.3g}s "
                                f"(timeout {self.heartbeat_timeout:g}s)"
                            ),
                        )
                        self._alerts[key] = alert
                        fresh.append(alert)
                else:
                    # The worker came back: a stall (unlike a straggler)
                    # is a condition, not an incident — clear it.
                    self._alerts.pop(key, None)
        return fresh

    @property
    def alerts(self) -> list[Alert]:
        """All currently-standing alerts, oldest first."""
        return sorted(self._alerts.values(), key=lambda a: a.t)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def progress(self) -> float:
        return self.done / self.total if self.total else 1.0

    def eta(self, now: float) -> float | None:
        """Estimated seconds to completion (None = no basis yet).

        With per-task estimates, remaining *expected work* over the
        observed completion rate of expected work — so finishing the
        cheap half fast does not produce a rosy ETA for the expensive
        half.  Without estimates, plain remaining-count over rate.
        """
        if self.finished:
            return 0.0
        if self.done == 0 or now <= 0:
            return None
        estimates = self.detector.estimates
        if estimates and self._done_expected > 0:
            remaining = sum(
                s for t, s in estimates.items() if t not in self._done
            )
            rate = self._done_expected / now
            return remaining / rate if rate > 0 else None
        rate = self.done / now
        remaining = max(0, self.total - self.done)
        return remaining / rate if rate > 0 else None

    def snapshot(self, now: float) -> dict:
        """The whole state as a JSON-able dict (status-file payload)."""
        det = self.detector
        running = sorted(
            (
                {
                    "task": task,
                    "rank": rank,
                    "since": since,
                    "elapsed": max(0.0, now - since),
                    "expected": det.expected(task),
                }
                for task, (rank, since) in self.running.items()
            ),
            key=lambda r: -r["elapsed"],
        )[:64]
        ranks = sorted(
            set(self.rank_done)
            | set(self.heartbeats)
            | {r for r, _ in self.running.values()}
            | set(range(self.n_ranks))
        )
        running_of: dict[int, int] = {}
        for rank, _ in self.running.values():
            running_of[rank] = running_of.get(rank, 0) + 1
        return {
            "t": now,
            "run": self.run_label,
            "total": self.total,
            "done": self.done,
            "queued": self.queued,
            "progress": self.progress(),
            "eta": self.eta(now),
            "finished": self.finished,
            "makespan": self.makespan,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "faults": self.faults,
            "retries": self.retries,
            "running": running,
            "ranks": [
                {
                    "rank": r,
                    "done": self.rank_done.get(r, 0),
                    "running": running_of.get(r, 0),
                    "heartbeat_age": (
                        max(0.0, now - self.heartbeats[r])
                        if r in self.heartbeats
                        else None
                    ),
                }
                for r in ranks
            ],
            "alerts": [a.to_dict() for a in self.alerts],
        }
