"""Streaming quantile sketches with bounded relative error.

A :class:`QuantileSketch` is a DDSketch-style mergeable summary: samples
land in geometric buckets ``gamma**i`` with ``gamma = (1+a)/(1-a)``, so
any quantile read back is within relative error ``a`` of the exact
rank-based quantile of the stream — while memory stays O(buckets),
independent of the stream length.  This is the instrument behind the
telemetry pipeline's p50/p95/p99 latencies: a run observes millions of
task/message durations without retaining a single event.

The math, for reference: a sample ``x > 0`` maps to bucket
``ceil(log(x, gamma))``; reading back the bucket midpoint in log space,
``2 * gamma**i / (gamma + 1)``, lands within a factor ``(1±a)`` of every
sample in the bucket.  Exact ``count`` / ``sum`` / ``min`` / ``max``
ride along so means and extremes are never quantized.

No repro imports — the module is dependency-free so
:mod:`repro.obs.metrics` can register sketches without import cycles.
"""

from __future__ import annotations

import math

__all__ = ["QuantileSketch", "DEFAULT_REL_ERR"]

#: Default relative-error bound (1%): p99 reads back within 1% of exact.
DEFAULT_REL_ERR = 0.01

#: Bucket-count ceiling before the low end collapses (DDSketch's
#: "collapsing lowest" strategy).  2048 buckets at 1% relative error
#: cover ~17 orders of magnitude — far beyond any latency range here —
#: so collapse is a memory backstop, not an accuracy concession.
DEFAULT_MAX_BUCKETS = 2048


class QuantileSketch:
    """Mergeable streaming quantile summary with relative-error bounds.

    Args:
        rel_err: guaranteed relative accuracy ``a`` of :meth:`quantile`
            (``0 < a < 1``); smaller is more accurate and more buckets.
        max_buckets: memory ceiling; when exceeded, the lowest buckets
            collapse into one (small values lose resolution first, which
            is the right trade for latency tails).
    """

    __slots__ = (
        "rel_err", "max_buckets", "gamma", "_log_gamma",
        "count", "total", "min", "max", "zeros", "buckets",
    )

    def __init__(
        self,
        rel_err: float = DEFAULT_REL_ERR,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if not 0.0 < rel_err < 1.0:
            raise ValueError(f"rel_err must be in (0, 1), got {rel_err}")
        if max_buckets < 2:
            raise ValueError(f"max_buckets must be >= 2, got {max_buckets}")
        self.rel_err = rel_err
        self.max_buckets = max_buckets
        self.gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zeros = 0  # samples <= 0 (latencies clamp negatives to zero)
        self.buckets: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    def observe(self, x: float) -> None:
        """Add one sample (negatives clamp to the zero bucket)."""
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if x <= 0.0:
            self.zeros += 1
            return
        i = math.ceil(math.log(x) / self._log_gamma)
        b = self.buckets
        try:
            b[i] += 1
        except KeyError:
            b[i] = 1
            if len(b) > self.max_buckets:
                self._collapse()

    def _collapse(self) -> None:
        """Fold the two lowest buckets together (memory backstop)."""
        lo = sorted(self.buckets)
        first, second = lo[0], lo[1]
        self.buckets[second] += self.buckets.pop(first)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch of the same ``rel_err`` into this one."""
        if other.gamma != self.gamma:
            raise ValueError(
                f"cannot merge sketches with different rel_err "
                f"({self.rel_err} vs {other.rel_err})"
            )
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zeros += other.zeros
        b = self.buckets
        for i, n in other.buckets.items():
            b[i] = b.get(i, 0) + n
        while len(b) > self.max_buckets:
            self._collapse()

    # ------------------------------------------------------------------ #
    # Read-back
    # ------------------------------------------------------------------ #

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), within ``rel_err`` of exact.

        "Exact" means the rank-based quantile of the observed stream:
        element ``floor(q * (count - 1))`` of the sorted samples.
        Returns 0.0 for an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = int(q * (self.count - 1)) + 1  # 1-based target rank
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        gamma = self.gamma
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            if seen >= rank:
                # Log-space bucket midpoint: within (1 ± rel_err) of
                # every sample the bucket holds.
                return 2.0 * gamma ** i / (gamma + 1.0)
        return self.max  # float fuzz fallback; rank <= count always

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def n_buckets(self) -> int:
        """Live bucket count — the sketch's actual memory footprint."""
        return len(self.buckets) + (1 if self.zeros else 0)

    def __len__(self) -> int:
        return self.count

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-friendly form; round-trips through :meth:`from_dict`."""
        return {
            "rel_err": self.rel_err,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "zeros": self.zeros,
            # JSON object keys are strings; sorted for stable output.
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sk = cls(rel_err=d.get("rel_err", DEFAULT_REL_ERR))
        sk.count = int(d.get("count", 0))
        sk.total = float(d.get("total", 0.0))
        if sk.count:
            sk.min = float(d.get("min", math.inf))
            sk.max = float(d.get("max", -math.inf))
        sk.zeros = int(d.get("zeros", 0))
        sk.buckets = {int(i): int(n) for i, n in d.get("buckets", {}).items()}
        return sk

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"QuantileSketch(n={self.count}, p50={self.quantile(0.5):.6g}, "
            f"p99={self.quantile(0.99):.6g}, buckets={self.n_buckets})"
        )
