"""Flight recorder: a bounded ring of recent events, dumped on anomaly.

A :class:`FlightRecorder` is an :class:`~repro.obs.events.EventSink`
holding only the last ``capacity`` events in a ring buffer — constant
memory however long the run.  When a trigger fires (fault injected, SLO
breach, ``when()`` condition) or the run aborts with an exception, the
ring is dumped to disk: a ``flight-NNNN.jsonl`` event file readable by
every ``python -m repro.obs`` subcommand, plus a
``flight-NNNN.manifest.json`` sidecar recording why, when, and what was
captured.  Clean runs write nothing.

This is the post-mortem story for *unobserved* production runs: attach
a recorder (cheaply — no full trace is retained) and the moments before
any anomaly are on disk without having planned for it.

"Aborts with an exception" includes being killed: the ``local`` backend
converts SIGTERM (and Ctrl-C's KeyboardInterrupt) on an armed run into
its normal exception path, so :meth:`FlightRecorder.abort` still runs
and the ring survives the kill instead of dying with the process (see
``repro.runtimes.local._terminate_to_exception``).
"""

from __future__ import annotations

import json
import os
from collections import deque

from repro.obs.events import RUN_FINISHED, Event, EventSink
from repro.obs.telemetry.sketch import DEFAULT_REL_ERR
from repro.obs.telemetry.triggers import FaultTrigger, TriggerSet

__all__ = ["FlightRecorder", "DEFAULT_CAPACITY"]

#: Default ring size: enough tail to reconstruct the failure
#: neighbourhood, small enough to be always-on.
DEFAULT_CAPACITY = 4096


class FlightRecorder(EventSink):
    """Keep the last ``capacity`` events; dump them when a trigger fires.

    Args:
        out_dir: directory for dumps (created on first dump, so a clean
            run leaves no trace on disk).
        capacity: ring size in events.
        triggers: extra dump predicates — :class:`Trigger` instances,
            ``when()`` condition strings, or SLO spec dicts.
        keep_faults: prepend a :class:`FaultTrigger` (default on).
        rel_err: relative error of the trigger quantile sketches.
    """

    def __init__(
        self,
        out_dir: str,
        *,
        capacity: int = DEFAULT_CAPACITY,
        triggers: "tuple | list" = (),
        keep_faults: bool = True,
        rel_err: float = DEFAULT_REL_ERR,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.out_dir = out_dir
        self.capacity = capacity
        all_triggers: list = [FaultTrigger()] if keep_faults else []
        all_triggers.extend(triggers)
        self.triggers = TriggerSet(all_triggers, rel_err=rel_err)
        self.ring: deque[Event] = deque(maxlen=capacity)
        #: Paths of every dump written, in order.
        self.dumps: list[str] = []
        self._run_idx = 0
        self._seen = 0  # events observed this run (ring may be smaller)

    def emit(self, event: Event) -> None:
        self.ring.append(event)
        self._seen += 1
        self.triggers.observe(event)
        if event.type == RUN_FINISHED:
            self.triggers.check()
            if self.triggers.fired:
                self._dump(self.triggers.reasons())
            self._end_run()

    def abort(self, exc: BaseException | None = None) -> str | None:
        """Dump unconditionally — the run died mid-stream.

        Controllers call this from their exception path; the dump
        captures the events leading up to the crash.  Returns the dump
        path (None if the ring is empty).
        """
        if not self._seen:
            return None
        reasons = [f"abort: {type(exc).__name__}: {exc}" if exc else "abort"]
        self.triggers.check()
        reasons.extend(self.triggers.reasons())
        path = self._dump(reasons)
        self._end_run()
        return path

    def close(self) -> None:
        # A truncated stream with a fired trigger still gets its dump
        # (e.g. the process is exiting through sink teardown).
        if self._seen:
            self.triggers.check()
            if self.triggers.fired:
                self._dump(self.triggers.reasons())
            self._end_run()

    # ------------------------------------------------------------------ #

    def _end_run(self) -> None:
        self.ring.clear()
        self._seen = 0
        self._run_idx += 1
        self.triggers.start_run()

    def _dump(self, reasons: list[str]) -> str:
        os.makedirs(self.out_dir, exist_ok=True)
        stem = f"flight-{len(self.dumps):04d}"
        path = os.path.join(self.out_dir, stem + ".jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            for e in self.ring:
                fh.write(json.dumps(e.to_dict(), separators=(",", ":")))
                fh.write("\n")
        manifest = {
            "run": self._run_idx,
            "reasons": reasons,
            "events_captured": len(self.ring),
            "events_seen": self._seen,
            "capacity": self.capacity,
            "truncated": self._seen > len(self.ring),
            "metrics": self.triggers.stats.metrics(),
        }
        with open(
            os.path.join(self.out_dir, stem + ".manifest.json"),
            "w",
            encoding="utf-8",
        ) as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        self.dumps.append(path)
        return path
