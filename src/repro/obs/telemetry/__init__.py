"""Bounded-memory telemetry: sketches, sampling, flight recorder, ledger.

The production-telemetry layer of :mod:`repro.obs`.  Where the base
observability stack records *everything* (full event streams, complete
traces), this package aggregates at the source so memory stays bounded
no matter how many runs or events flow through:

* :class:`QuantileSketch` — streaming p50/p95/p99 in O(buckets) memory
  with a guaranteed relative-error bound.
* :mod:`~repro.obs.telemetry.triggers` — declarative "when condition"
  predicates (:func:`when`, :class:`FaultTrigger`,
  :class:`SloBreachTrigger`) that decide which runs deserve attention.
* :class:`SamplingSink` — head + tail-based trace sampling under a byte
  budget: triggered runs always kept, clean runs coin-flipped.
* :class:`FlightRecorder` — an always-on ring buffer of recent events,
  dumped to disk only when a trigger fires or the run aborts.
* :class:`Ledger` — a cross-run JSONL record of metric snapshots with
  regression detection (``python -m repro.obs trends``).

Controllers opt in with ``telemetry=True`` (or a
:class:`TelemetryConfig`); the default is off, preserving the
zero-cost-when-unobserved contract and bit-identical event streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.telemetry.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.telemetry.ledger import (
    HIGHER_IS_BETTER,
    Ledger,
    default_machine,
    detect_regressions,
    fingerprint,
    metrics_from_snapshot,
    render_trends,
)
from repro.obs.telemetry.sampling import SamplingSink
from repro.obs.telemetry.sketch import DEFAULT_REL_ERR, QuantileSketch
from repro.obs.telemetry.triggers import (
    FaultTrigger,
    MetricTrigger,
    RunStreamStats,
    SloBreachTrigger,
    Trigger,
    TriggerSet,
    when,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_REL_ERR",
    "FaultTrigger",
    "FlightRecorder",
    "HIGHER_IS_BETTER",
    "Ledger",
    "MetricTrigger",
    "QuantileSketch",
    "RunStreamStats",
    "SamplingSink",
    "SloBreachTrigger",
    "TelemetryConfig",
    "Trigger",
    "TriggerSet",
    "default_machine",
    "detect_regressions",
    "fingerprint",
    "metrics_from_snapshot",
    "render_trends",
    "when",
]


@dataclass(frozen=True)
class TelemetryConfig:
    """What a controller's built-in telemetry should collect.

    Pass to a controller as ``telemetry=TelemetryConfig(...)`` (or
    ``telemetry=True`` for the defaults).  With telemetry on, the run
    feeds latency sketches (task compute, message latency, queue wait)
    into its :class:`~repro.obs.metrics.MetricsRegistry` — surfaced on
    ``RunResult.metrics.sketches`` — and, if ``flight_dir`` is set,
    attaches a :class:`FlightRecorder` that dumps recent events when a
    trigger fires or the run raises.

    Attributes:
        rel_err: relative-error bound of the latency sketches.
        flight_dir: directory for flight-recorder dumps (None disables
            the recorder entirely).
        flight_capacity: ring size of the flight recorder, in events.
        triggers: extra dump predicates for the flight recorder —
            ``when()`` condition strings, SLO spec dicts, or
            :class:`Trigger` instances (faults always trigger).
    """

    rel_err: float = DEFAULT_REL_ERR
    flight_dir: str | None = None
    flight_capacity: int = DEFAULT_CAPACITY
    triggers: tuple = field(default=())

    @classmethod
    def coerce(cls, value) -> "TelemetryConfig | None":
        """Normalize a controller's ``telemetry=`` argument.

        ``None``/``False`` -> None (off), ``True`` -> defaults, a
        :class:`TelemetryConfig` passes through, a dict becomes kwargs.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            f"telemetry must be None, bool, dict, or TelemetryConfig, "
            f"got {type(value).__name__}"
        )
