"""Head + tail-based trace sampling under a byte budget.

:class:`SamplingSink` wraps any :class:`~repro.obs.events.EventSink`
and decides *per run* whether the wrapped sink sees the trace at all.
The decision is tail-based — made at ``run_finished``, when the whole
run is known — so anomalous runs are never lost to an up-front coin
flip:

* **Triggered runs are always kept**: an injected fault, an SLO breach,
  a user-declared ``when(metric > θ)`` condition
  (:mod:`repro.obs.telemetry.triggers`), or membership in the
  slowest-*k* runs seen so far.
* **Clean runs are head-sampled**: kept with ``probability`` under a
  deterministic per-run coin (seeded by ``seed`` and the run ordinal,
  so re-running a suite reproduces the identical keep/drop pattern),
  and only while the cumulative bytes of kept clean traces stay under
  ``budget_bytes``.

Memory is one run's events (released at each decision); dropped traces
cost nothing downstream.  Every decision is recorded in
:attr:`SamplingSink.decisions` for audit.
"""

from __future__ import annotations

import heapq
import json
import random

from repro.obs.events import RUN_FINISHED, Event, EventSink
from repro.obs.telemetry.sketch import DEFAULT_REL_ERR
from repro.obs.telemetry.triggers import FaultTrigger, TriggerSet

__all__ = ["SamplingSink"]


def _trace_nbytes(events: list[Event]) -> int:
    """Serialized size of a trace, as its JSONL export would measure it."""
    return sum(
        len(json.dumps(e.to_dict(), separators=(",", ":"))) + 1
        for e in events
    )


class SamplingSink(EventSink):
    """Forward whole runs to ``inner``, or drop them, by tail decision.

    Args:
        inner: the sink that receives kept traces (exporter, ListSink...).
        probability: head-sampling rate for clean runs (0 drops all
            clean runs, 1 keeps every run the budget allows).
        budget_bytes: ceiling on cumulative serialized bytes of *clean*
            kept traces; ``None`` means unbounded.  Triggered traces
            are exempt — anomalies are kept even over budget.
        triggers: extra keep predicates — :class:`Trigger` instances,
            ``when()``-style condition strings, or SLO spec dicts
            (see :class:`~repro.obs.telemetry.triggers.TriggerSet`).
        keep_faults: prepend a :class:`FaultTrigger` (default on).
        slowest_k: additionally keep any run ranking among the *k*
            largest makespans seen so far (0 disables).
        seed: keep/drop decisions derive from ``Random(f"{seed}:{run}")``
            — stable across processes and ``PYTHONHASHSEED``.
        rel_err: relative error of the trigger quantile sketches.
    """

    def __init__(
        self,
        inner: EventSink,
        *,
        probability: float = 0.1,
        budget_bytes: int | None = None,
        triggers: "tuple | list" = (),
        keep_faults: bool = True,
        slowest_k: int = 0,
        seed: int = 0,
        rel_err: float = DEFAULT_REL_ERR,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {probability}"
            )
        self.inner = inner
        self.probability = probability
        self.budget_bytes = budget_bytes
        all_triggers: list = [FaultTrigger()] if keep_faults else []
        all_triggers.extend(triggers)
        self.triggers = TriggerSet(all_triggers, rel_err=rel_err)
        self.slowest_k = slowest_k
        self.seed = seed
        #: Audit log: one dict per completed run
        #: (run ordinal, kept, reasons, nbytes, n_events).
        self.decisions: list[dict] = []
        self.kept_runs = 0
        self.dropped_runs = 0
        self.clean_bytes_kept = 0
        self._buffer: list[Event] = []
        self._run_idx = 0
        # Min-heap of the k largest makespans seen (streaming top-k).
        self._slowest: list[float] = []

    # The wrapped sink decides whether causal parents are threaded.
    @property
    def wants_context(self) -> bool:  # type: ignore[override]
        return getattr(self.inner, "wants_context", False)

    def emit(self, event: Event) -> None:
        self._buffer.append(event)
        self.triggers.observe(event)
        if event.type == RUN_FINISHED:
            self._decide()

    def close(self) -> None:
        if self._buffer:  # truncated run (aborted mid-stream): decide anyway
            self._decide()
        self.inner.close()

    # ------------------------------------------------------------------ #
    # The tail decision
    # ------------------------------------------------------------------ #

    def _is_slowest(self, makespan: float) -> bool:
        """Streaming top-k membership: is this run among the k slowest?"""
        k = self.slowest_k
        if k <= 0:
            return False
        if len(self._slowest) < k:
            heapq.heappush(self._slowest, makespan)
            return True
        if makespan > self._slowest[0]:
            heapq.heapreplace(self._slowest, makespan)
            return True
        return False

    def _decide(self) -> None:
        events, self._buffer = self._buffer, []
        run = self._run_idx
        self._run_idx += 1
        self.triggers.check()
        reasons = self.triggers.reasons()
        if self._is_slowest(self.triggers.stats.makespan):
            reasons.append(f"slowest-{self.slowest_k}")
        kept = bool(reasons)
        nbytes = 0
        if not kept and self.probability > 0.0:
            # Deterministic per-run coin: the string seed hashes via
            # sha512, independent of PYTHONHASHSEED.
            coin = random.Random(f"{self.seed}:{run}").random()
            if coin < self.probability:
                nbytes = _trace_nbytes(events)
                budget = self.budget_bytes
                if budget is None or self.clean_bytes_kept + nbytes <= budget:
                    kept = True
                    reasons.append(f"head p={self.probability:g}")
                    self.clean_bytes_kept += nbytes
                else:
                    reasons.append("over budget")
        if kept:
            self.kept_runs += 1
            if not nbytes:
                nbytes = _trace_nbytes(events)
            inner = self.inner
            for e in events:
                inner.emit(e)
        else:
            self.dropped_runs += 1
        self.decisions.append(
            {
                "run": run,
                "kept": kept,
                "reasons": reasons,
                "nbytes": nbytes if kept else 0,
                "n_events": len(events),
            }
        )
