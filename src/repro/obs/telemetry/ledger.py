"""Cross-run metrics ledger and trend regression detection.

Every run appends one JSON line — its scalar metrics plus quantile
sketch summaries, keyed by a ``(workload, runtime, machine)``
fingerprint — to a ledger file.  ``python -m repro.obs trends`` (and
the perf harness's ``--ledger`` flag) reads the ledger back and flags
metrics that regressed against the recent history of the same
fingerprint: the cross-run half of SLO enforcement, where single-run
bounds (``obs slo``) cannot see a gradual slide.

Detection is deliberately simple and robust: the baseline for an entry
is the *median* of the preceding ``window`` runs of its fingerprint, so
one noisy historical run cannot poison the comparison, and a metric
regresses when it moves beyond ``threshold`` (default 30%) in the bad
direction.  Most metrics are lower-is-better (latencies, makespan,
bytes); the :data:`HIGHER_IS_BETTER` set inverts the test for
throughput-shaped ones.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from statistics import median

__all__ = [
    "HIGHER_IS_BETTER",
    "Ledger",
    "default_machine",
    "detect_regressions",
    "fingerprint",
    "metrics_from_snapshot",
    "render_trends",
]

#: Metrics where a *drop* is the regression (everything else is
#: lower-is-better: latencies, makespan, queue waits, bytes, retries).
HIGHER_IS_BETTER = frozenset(
    {"throughput", "tasks_per_second", "events_per_second", "cache_hit_rate"}
)

#: Bookkeeping keys never compared across runs.
_NON_METRIC_KEYS = frozenset({"ts"})


def default_machine() -> str:
    """A stable machine fingerprint: OS, architecture, Python minor."""
    v = sys.version_info
    return (
        f"{platform.system()}-{platform.machine()}-py{v.major}.{v.minor}"
    ).lower()


def fingerprint(workload: str, runtime: str, machine: str) -> str:
    """The ledger grouping key: runs are only compared within one."""
    return f"{workload}/{runtime}/{machine}"


def metrics_from_snapshot(snapshot) -> dict[str, float]:
    """Flatten a :class:`~repro.obs.metrics.MetricsSnapshot` to ledger
    scalars: counters, gauges, and per-sketch mean/max/percentiles."""
    out: dict[str, float] = {}
    for name, value in getattr(snapshot, "counters", {}).items():
        out[name] = float(value)
    for name, value in getattr(snapshot, "gauges", {}).items():
        out[name] = float(value)
    for name, sk in getattr(snapshot, "sketches", {}).items():
        count = sk.get("count", 0)
        out[f"{name}_count"] = float(count)
        if count:
            out[f"{name}_mean"] = sk.get("total", 0.0) / count
            out[f"{name}_max"] = float(sk.get("max", 0.0))
        for p in ("p50", "p95", "p99"):
            if p in sk:
                out[f"{name}_{p}"] = float(sk[p])
    return out


class Ledger:
    """Append-only JSONL store of per-run metric records."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(
        self,
        workload: str,
        runtime: str,
        metrics: dict[str, float],
        *,
        machine: str | None = None,
        meta: dict | None = None,
        ts: float | None = None,
    ) -> dict:
        """Append one run record; returns the record written."""
        machine = machine or default_machine()
        record = {
            "fingerprint": fingerprint(workload, runtime, machine),
            "workload": workload,
            "runtime": runtime,
            "machine": machine,
            "ts": time.time() if ts is None else ts,
            "metrics": {k: float(v) for k, v in metrics.items()},
        }
        if meta:
            record["meta"] = meta
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
        return record

    def read(self) -> list[dict]:
        """All records in append order ([] if the file does not exist)."""
        return list(self.iter_entries())

    def iter_entries(self):
        """Stream records one line at a time (the ledger can be huge)."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: corrupt ledger line: {exc}"
                    ) from exc


def detect_regressions(
    entries,
    *,
    threshold: float = 0.3,
    window: int = 8,
    min_history: int = 1,
    metrics: "list[str] | None" = None,
) -> list[dict]:
    """Compare each fingerprint's latest run to its recent history.

    Args:
        entries: ledger records in append order (any iterable).
        threshold: relative change that counts as a regression (0.3 =
            30% worse than baseline).
        window: how many preceding runs form the baseline (median).
        min_history: minimum preceding runs required before judging.
        metrics: restrict the comparison to these metric names
            (default: every numeric metric shared with the baseline).

    Returns one dict per regressed metric:
    ``{fingerprint, metric, value, baseline, change, n_baseline}``,
    where ``change`` is the signed relative delta vs the baseline.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    by_fp: dict[str, list[dict]] = {}
    for e in entries:
        by_fp.setdefault(e["fingerprint"], []).append(e)
    regressions: list[dict] = []
    for fp, group in by_fp.items():
        if len(group) < min_history + 1:
            continue
        current = group[-1]["metrics"]
        history = group[-(window + 1):-1]
        names = metrics if metrics is not None else sorted(current)
        for name in names:
            if name in _NON_METRIC_KEYS:
                continue
            value = current.get(name)
            if not isinstance(value, (int, float)):
                continue
            base_values = [
                h["metrics"][name]
                for h in history
                if isinstance(h["metrics"].get(name), (int, float))
            ]
            if len(base_values) < min_history:
                continue
            baseline = median(base_values)
            if baseline == 0:
                continue  # relative change undefined
            change = (value - baseline) / abs(baseline)
            worse = -change if name in HIGHER_IS_BETTER else change
            if worse > threshold:
                regressions.append(
                    {
                        "fingerprint": fp,
                        "metric": name,
                        "value": float(value),
                        "baseline": float(baseline),
                        "change": change,
                        "n_baseline": len(base_values),
                    }
                )
    regressions.sort(
        key=lambda r: (r["fingerprint"], -abs(r["change"]), r["metric"])
    )
    return regressions


def render_trends(
    entries: list[dict],
    regressions: list[dict],
    *,
    threshold: float = 0.3,
) -> str:
    """Human-readable trends report for ``obs trends``."""
    by_fp: dict[str, int] = {}
    for e in entries:
        by_fp[e["fingerprint"]] = by_fp.get(e["fingerprint"], 0) + 1
    lines = [
        f"ledger: {len(entries)} runs across {len(by_fp)} fingerprints"
    ]
    for fp in sorted(by_fp):
        lines.append(f"  {fp}: {by_fp[fp]} runs")
    if not regressions:
        lines.append(f"no regressions beyond {threshold:.0%}")
        return "\n".join(lines)
    lines.append(
        f"{len(regressions)} metric regression(s) beyond {threshold:.0%}:"
    )
    for r in regressions:
        direction = (
            "dropped" if r["metric"] in HIGHER_IS_BETTER else "rose"
        )
        lines.append(
            f"  REGRESSION {r['fingerprint']} {r['metric']}: "
            f"{direction} {abs(r['change']):.1%} "
            f"({r['baseline']:.6g} -> {r['value']:.6g}, "
            f"baseline of {r['n_baseline']})"
        )
    return "\n".join(lines)
