"""Declarative triggers: "when condition, act" over a live event stream.

DIVA-style reactive predicates decide *which* runs deserve attention:
the tail sampler (:mod:`repro.obs.telemetry.sampling`) keeps every
triggered trace, and the flight recorder
(:mod:`repro.obs.telemetry.flight`) dumps its ring buffer when one
fires.  Three shapes:

* :class:`FaultTrigger` — any fault-layer event
  (:data:`~repro.obs.events.FAULT_VOCABULARY`) fired during the run.
* :func:`when` — a one-line metric predicate, e.g.
  ``when("task_seconds_p99 > 0.05")`` or ``when("makespan >= 2.0")``,
  evaluated against streaming per-run statistics.
* :class:`SloBreachTrigger` — a full declarative bound spec (the same
  ``max_<metric>`` / ``min_<metric>`` JSON shape ``obs slo`` asserts),
  restricted to streaming-computable metrics.

All three consume events incrementally through a shared
:class:`RunStreamStats` accumulator — quantiles come from
:class:`~repro.obs.telemetry.sketch.QuantileSketch`, so trigger
evaluation holds O(buckets) memory regardless of run size.
"""

from __future__ import annotations

from repro.obs.events import (
    FAULT_INJECTED,
    FAULT_VOCABULARY,
    MESSAGE_DELIVERED,
    MESSAGE_SENT,
    RANK_DEAD,
    RUN_STARTED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_RETRY,
    TASK_STARTED,
    Event,
)
from repro.obs.telemetry.sketch import DEFAULT_REL_ERR, QuantileSketch

__all__ = [
    "RunStreamStats",
    "Trigger",
    "FaultTrigger",
    "MetricTrigger",
    "SloBreachTrigger",
    "TriggerSet",
    "when",
]

#: Quantiles every latency sketch reports, as (suffix, q) pairs.
_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: The three latency families the stream accumulator sketches.
_SKETCHED = ("task_seconds", "message_seconds", "queue_wait_seconds")


class RunStreamStats:
    """Single-pass, bounded-memory statistics of one run's event stream.

    Feed events in emission order with :meth:`observe`; read scalar
    metrics back with :meth:`metrics` (or one with :meth:`metric`).
    Memory is O(sketch buckets + in-flight tasks) — never O(events).
    """

    __slots__ = (
        "makespan", "n_events", "tasks_finished", "messages_delivered",
        "messages_sent", "bytes_sent", "faults_injected", "task_retries",
        "rank_deaths", "messages_dropped", "task_seconds",
        "message_seconds", "queue_wait_seconds", "_enqueued_at",
    )

    def __init__(self, rel_err: float = DEFAULT_REL_ERR) -> None:
        self.makespan = 0.0
        self.n_events = 0
        self.tasks_finished = 0
        self.messages_delivered = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.faults_injected = 0
        self.task_retries = 0
        self.rank_deaths = 0
        self.messages_dropped = 0
        self.task_seconds = QuantileSketch(rel_err)
        self.message_seconds = QuantileSketch(rel_err)
        self.queue_wait_seconds = QuantileSketch(rel_err)
        # task id -> last enqueue timestamp (popped by task_started);
        # bounded by tasks in flight, not by stream length.
        self._enqueued_at: dict[int, float] = {}

    def observe(self, ev: Event) -> None:
        self.n_events += 1
        if ev.t > self.makespan:
            self.makespan = ev.t
        typ = ev.type
        if typ == TASK_FINISHED:
            self.tasks_finished += 1
            self.task_seconds.observe(ev.dur)
        elif typ == TASK_ENQUEUED:
            self._enqueued_at[ev.task] = ev.t
        elif typ == TASK_STARTED:
            t0 = self._enqueued_at.pop(ev.task, None)
            if t0 is not None:
                self.queue_wait_seconds.observe(max(0.0, ev.t - t0))
        elif typ == MESSAGE_DELIVERED:
            self.messages_delivered += 1
            self.message_seconds.observe(ev.dur)
        elif typ == MESSAGE_SENT:
            self.messages_sent += 1
            self.bytes_sent += ev.nbytes
        elif typ == FAULT_INJECTED:
            self.faults_injected += 1
            if ev.category == "link":
                self.messages_dropped += 1
        elif typ == TASK_RETRY:
            self.task_retries += 1
        elif typ == RANK_DEAD:
            self.rank_deaths += 1

    @classmethod
    def metric_names(cls) -> frozenset[str]:
        """Every metric :meth:`metrics` reports (trigger/spec validation)."""
        names = {
            "makespan", "n_events", "tasks_finished", "messages_delivered",
            "messages_sent", "bytes_sent", "faults_injected",
            "task_retries", "rank_deaths", "messages_dropped",
        }
        for family in _SKETCHED:
            names.add(f"{family}_mean")
            names.add(f"{family}_max")
            for suffix, _ in _QUANTILES:
                names.add(f"{family}_{suffix}")
        return frozenset(names)

    def metrics(self) -> dict[str, float]:
        """Scalar metric snapshot (percentiles read from the sketches)."""
        out = {
            "makespan": self.makespan,
            "n_events": float(self.n_events),
            "tasks_finished": float(self.tasks_finished),
            "messages_delivered": float(self.messages_delivered),
            "messages_sent": float(self.messages_sent),
            "bytes_sent": float(self.bytes_sent),
            "faults_injected": float(self.faults_injected),
            "task_retries": float(self.task_retries),
            "rank_deaths": float(self.rank_deaths),
            "messages_dropped": float(self.messages_dropped),
        }
        for family in _SKETCHED:
            sk: QuantileSketch = getattr(self, family)
            out[f"{family}_mean"] = sk.mean
            out[f"{family}_max"] = sk.max if sk.count else 0.0
            for suffix, q in _QUANTILES:
                out[f"{family}_{suffix}"] = sk.quantile(q)
        return out

    def metric(self, name: str) -> float:
        """One metric by name (cheaper than :meth:`metrics` for scalars)."""
        for family in _SKETCHED:
            if name.startswith(family):
                return self.metrics()[name]
        value = getattr(self, name, None)
        if value is None:
            raise KeyError(name)
        return float(value)


class Trigger:
    """One keep/dump predicate over a run.

    Event-driven triggers override :meth:`observe` and latch
    :attr:`fired` themselves; metric-driven triggers override
    :meth:`evaluate` and are checked (and latched) by the owning
    :class:`TriggerSet` when a decision is needed.
    """

    fired: bool = False

    def reset(self) -> None:
        self.fired = False

    def observe(self, ev: Event) -> None:
        """Inspect one event (event-driven triggers only)."""

    def evaluate(self, stats: RunStreamStats) -> bool:
        """Check the predicate against streaming stats (metric triggers)."""
        return self.fired

    def reason(self) -> str:
        return type(self).__name__


class FaultTrigger(Trigger):
    """Fires on any fault-layer event (injected fault, retry, rank death,
    link drop) — the "always keep anomalous traces" default."""

    def __init__(self) -> None:
        self.fired = False
        self._first: Event | None = None

    def reset(self) -> None:
        self.fired = False
        self._first = None

    def observe(self, ev: Event) -> None:
        if not self.fired and ev.type in FAULT_VOCABULARY:
            self.fired = True
            self._first = ev

    def reason(self) -> str:
        if self._first is None:
            return "fault"
        return (
            f"fault: {self._first.type} ({self._first.category or 'task'}) "
            f"at t={self._first.t:.6g}"
        )


_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


class MetricTrigger(Trigger):
    """``metric <op> threshold`` over the streaming run statistics."""

    def __init__(self, name: str, op: str, threshold: float) -> None:
        if op not in _OPS:
            raise ValueError(
                f"unknown operator {op!r} (one of {sorted(_OPS)})"
            )
        known = RunStreamStats.metric_names()
        if name not in known:
            raise ValueError(
                f"unknown trigger metric {name!r} "
                f"(have: {', '.join(sorted(known))})"
            )
        self.name = name
        self.op = op
        self.threshold = float(threshold)
        self.fired = False
        self._value = 0.0

    def evaluate(self, stats: RunStreamStats) -> bool:
        value = stats.metric(self.name)
        if _OPS[self.op](value, self.threshold):
            self.fired = True
            self._value = value
        return self.fired

    def reason(self) -> str:
        return (
            f"when({self.name} {self.op} {self.threshold:g}): "
            f"observed {self._value:g}"
        )


def when(condition: str) -> MetricTrigger:
    """Parse a one-line DIVA-style predicate into a trigger.

    ``when("task_seconds_p99 > 0.05")`` keeps / dumps any run whose
    streaming task-latency p99 exceeds 50ms.  The grammar is exactly
    ``<metric> <op> <number>`` with ``op`` one of ``> >= < <=``; metric
    names are :meth:`RunStreamStats.metric_names`.
    """
    parts = condition.split()
    if len(parts) != 3:
        raise ValueError(
            f"trigger condition must be '<metric> <op> <number>', "
            f"got {condition!r}"
        )
    name, op, raw = parts
    try:
        threshold = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"trigger threshold {raw!r} is not a number"
        ) from exc
    return MetricTrigger(name, op, threshold)


class SloBreachTrigger(Trigger):
    """Fires when a run breaches a declarative SLO spec.

    The spec is the same JSON shape ``python -m repro.obs slo`` asserts
    (``{"max_task_seconds_p99": 0.05, "min_tasks_finished": 100}``),
    restricted to the streaming metrics of :class:`RunStreamStats`.
    """

    def __init__(self, spec: dict) -> None:
        known = RunStreamStats.metric_names()
        self.bounds: list[tuple[str, str, bool, float]] = []
        for key, bound in spec.items():
            if key.startswith("max_"):
                name, is_max = key[4:], True
            elif key.startswith("min_"):
                name, is_max = key[4:], False
            else:
                raise ValueError(
                    f"SLO key {key!r} must start with 'max_' or 'min_'"
                )
            if name not in known:
                raise ValueError(
                    f"SLO metric {name!r} is not streaming-computable "
                    f"(have: {', '.join(sorted(known))})"
                )
            self.bounds.append((key, name, is_max, float(bound)))
        self.fired = False
        self._violations: list[str] = []

    def reset(self) -> None:
        self.fired = False
        self._violations = []

    def evaluate(self, stats: RunStreamStats) -> bool:
        violations = []
        for key, name, is_max, bound in self.bounds:
            value = stats.metric(name)
            if (is_max and value > bound) or (not is_max and value < bound):
                op = ">" if is_max else "<"
                violations.append(f"{key}: {name} = {value:g} {op} {bound:g}")
        if violations:
            self.fired = True
            self._violations = violations
        return self.fired

    def reason(self) -> str:
        return "slo breach: " + "; ".join(self._violations)


class TriggerSet:
    """A group of triggers sharing one streaming accumulator.

    Strings are sugar for :func:`when`; dicts for
    :class:`SloBreachTrigger`.  Feed every event through
    :meth:`observe`; call :meth:`check` where a keep/dump decision is
    due (run end, abort).  Metric triggers latch once fired — a
    condition that held mid-run keeps the run even if the final metrics
    recovered.
    """

    def __init__(
        self,
        triggers: "tuple | list" = (),
        rel_err: float = DEFAULT_REL_ERR,
    ) -> None:
        self.triggers: list[Trigger] = []
        for t in triggers:
            if isinstance(t, str):
                t = when(t)
            elif isinstance(t, dict):
                t = SloBreachTrigger(t)
            elif not isinstance(t, Trigger):
                raise TypeError(
                    f"trigger must be a Trigger, condition string, or "
                    f"SLO spec dict, got {type(t).__name__}"
                )
            self.triggers.append(t)
        self.rel_err = rel_err
        self.stats = RunStreamStats(rel_err)

    def __len__(self) -> int:
        return len(self.triggers)

    def start_run(self) -> None:
        """Reset for the next run (the accumulator starts fresh)."""
        self.stats = RunStreamStats(self.rel_err)
        for t in self.triggers:
            t.reset()

    def observe(self, ev: Event) -> None:
        if ev.type == RUN_STARTED:
            self.start_run()
        self.stats.observe(ev)
        for t in self.triggers:
            t.observe(ev)

    def check(self) -> bool:
        """Evaluate metric triggers against the current stats; latch."""
        fired = False
        for t in self.triggers:
            fired = t.evaluate(self.stats) or fired
        return fired

    @property
    def fired(self) -> bool:
        return any(t.fired for t in self.triggers)

    def reasons(self) -> list[str]:
        return [t.reason() for t in self.triggers if t.fired]
