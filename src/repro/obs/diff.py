"""Trace diffing: explain *what moved* between two captured runs.

``python -m repro.obs diff base.jsonl current.jsonl`` (and the perf
harness's ``--check`` regression path) build on this module.  Runs are
paired positionally (run *i* of file A against run *i* of file B); each
pair yields a :class:`RunDiff` with:

* makespan delta and its **critical-path attribution** — how much of
  the change is compute vs. overhead vs. network vs. wait on the
  binding chain (the buckets of :mod:`repro.obs.critical_path`);
* per-phase (stats-category) totals summed over all ranks;
* per-task compute deltas, plus tasks that exist on only one side;
* fault/recovery overhead on both sides
  (:func:`~repro.obs.spans.recovery_accounting`).

The renderer names the most-moved task and phase explicitly, so a
regression report reads "t13 got 10x slower, the delta is compute on
the critical path" instead of "the number changed".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.critical_path import BUCKETS, critical_path
from repro.obs.events import (
    MESSAGE_DELIVERED,
    OVERHEAD,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_FINISHED,
    Event,
)
from repro.obs.export import split_runs
from repro.obs.spans import causal_dag, recovery_accounting

__all__ = ["RunDiff", "diff_runs", "diff_traces", "render_diff",
           "attribution_report"]

#: Deltas below this are virtual-clock float residue, not a change.
_EPS = 1e-12

#: Fault-accounting keys worth surfacing in a diff, in report order.
_RECOVERY_KEYS = (
    "faults_injected", "task_retries", "rank_deaths", "tasks_migrated",
    "messages_dropped", "wasted_seconds", "replayed_seconds",
    "recovery_tail_seconds",
)


def _phase_totals(events: list[Event]) -> dict[str, float]:
    """Per-category seconds summed over all ranks (compute + overheads)."""
    totals: dict[str, float] = {}
    for ev in events:
        if ev.type == TASK_FINISHED:
            totals["compute"] = totals.get("compute", 0.0) + ev.dur
        elif ev.type == MESSAGE_DELIVERED and ev.dur > 0:
            totals["network"] = totals.get("network", 0.0) + ev.dur
        elif ev.type == OVERHEAD and ev.category:
            totals[ev.category] = totals.get(ev.category, 0.0) + ev.dur
    return totals


def _makespan(events: list[Event]) -> float:
    m = 0.0
    for ev in events:
        if ev.type in (RUN_FINISHED, TASK_FINISHED, MESSAGE_DELIVERED):
            m = max(m, ev.t)
    return m


def _label(events: list[Event]) -> str:
    for ev in events:
        if ev.type == RUN_STARTED:
            return ev.label or "run"
    return "run"


@dataclass
class RunDiff:
    """Everything that changed between one pair of runs."""

    label_a: str = "a"
    label_b: str = "b"
    makespan_a: float = 0.0
    makespan_b: float = 0.0
    #: category -> (seconds in A, seconds in B)
    phases: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: task -> (final-attempt compute in A, in B); only tasks on both sides
    tasks: dict[int, tuple[float, float]] = field(default_factory=dict)
    new_tasks: list[int] = field(default_factory=list)
    removed_tasks: list[int] = field(default_factory=list)
    #: critical-path bucket totals of each side
    cp_a: dict[str, float] = field(default_factory=dict)
    cp_b: dict[str, float] = field(default_factory=dict)
    recovery_a: dict[str, float] = field(default_factory=dict)
    recovery_b: dict[str, float] = field(default_factory=dict)

    @property
    def makespan_delta(self) -> float:
        return self.makespan_b - self.makespan_a

    @property
    def makespan_ratio(self) -> float:
        return (
            self.makespan_b / self.makespan_a if self.makespan_a > 0 else 0.0
        )

    def attribution(self) -> dict[str, float]:
        """Critical-path bucket deltas — where the makespan change sits."""
        return {
            b: self.cp_b.get(b, 0.0) - self.cp_a.get(b, 0.0) for b in BUCKETS
        }

    def dominant_bucket(self) -> str:
        """The bucket contributing most of the (absolute) delta."""
        attr = self.attribution()
        return max(attr, key=lambda b: abs(attr[b]))

    def task_deltas(self) -> list[tuple[int, float]]:
        """``(task, compute_b - compute_a)`` sorted by descending |delta|."""
        out = [(t, b - a) for t, (a, b) in self.tasks.items()]
        out.sort(key=lambda x: (-abs(x[1]), x[0]))
        return out

    def phase_deltas(self) -> list[tuple[str, float]]:
        """``(category, seconds_b - seconds_a)`` by descending |delta|."""
        out = [(c, b - a) for c, (a, b) in self.phases.items()]
        out.sort(key=lambda x: (-abs(x[1]), x[0]))
        return out

    def slowest_task(self) -> tuple[int, float] | None:
        """The task whose compute grew the most, if any grew."""
        deltas = self.task_deltas()
        return deltas[0] if deltas and deltas[0][1] > _EPS else None

    def has_fault_activity(self) -> bool:
        return any(
            self.recovery_a.get(k) or self.recovery_b.get(k)
            for k in _RECOVERY_KEYS
        )


def diff_runs(events_a: list[Event], events_b: list[Event]) -> RunDiff:
    """Diff two single-run event streams."""
    d = RunDiff(
        label_a=_label(events_a),
        label_b=_label(events_b),
        makespan_a=_makespan(events_a),
        makespan_b=_makespan(events_b),
    )
    pa, pb = _phase_totals(events_a), _phase_totals(events_b)
    for cat in sorted(set(pa) | set(pb)):
        d.phases[cat] = (pa.get(cat, 0.0), pb.get(cat, 0.0))
    dag_a, dag_b = causal_dag(events_a), causal_dag(events_b)
    for t in sorted(set(dag_a.spans) & set(dag_b.spans)):
        d.tasks[t] = (dag_a.spans[t].compute, dag_b.spans[t].compute)
    d.new_tasks = sorted(set(dag_b.spans) - set(dag_a.spans))
    d.removed_tasks = sorted(set(dag_a.spans) - set(dag_b.spans))
    d.cp_a = critical_path(events_a).totals
    d.cp_b = critical_path(events_b).totals
    d.recovery_a = recovery_accounting(events_a)
    d.recovery_b = recovery_accounting(events_b)
    return d


def diff_traces(
    events_a: list[Event], events_b: list[Event]
) -> list[RunDiff]:
    """Diff two (possibly multi-run) traces, pairing runs by position."""
    runs_a, runs_b = split_runs(events_a), split_runs(events_b)
    return [
        diff_runs(a, b) for a, b in zip(runs_a, runs_b)
    ]


def _sec(x: float) -> str:
    return f"{x:.6f}s"


def _signed(x: float) -> str:
    return f"{x:+.6f}s"


def render_diff(d: RunDiff, top: int = 8) -> str:
    """Human-readable report of one run pair."""
    lines = [f"== {d.label_a} -> {d.label_b} =="]
    pct = (
        f", {d.makespan_delta / d.makespan_a:+.1%}"
        if d.makespan_a > 0
        else ""
    )
    lines.append(
        f"makespan {_sec(d.makespan_a)} -> {_sec(d.makespan_b)} "
        f"({_signed(d.makespan_delta)}{pct})"
    )
    attr = d.attribution()
    lines.append(
        "critical-path attribution: "
        + " | ".join(f"{b} {_signed(attr[b])}" for b in BUCKETS)
        + f"  (dominant: {d.dominant_bucket()})"
    )
    phase = d.phase_deltas()
    if phase:
        lines.append("phases (seconds summed over ranks):")
        for cat, delta in phase[:top]:
            a, b = d.phases[cat]
            lines.append(
                f"  {cat:<12} {_sec(a)} -> {_sec(b)}  ({_signed(delta)})"
            )
    moved = [td for td in d.task_deltas() if abs(td[1]) > _EPS]
    if moved:
        lines.append(f"tasks (top {min(top, len(moved))} by |compute delta|):")
        for t, delta in moved[:top]:
            a, b = d.tasks[t]
            lines.append(
                f"  t{t:<6} {_sec(a)} -> {_sec(b)}  ({_signed(delta)})"
            )
    if d.new_tasks:
        lines.append(f"new tasks (only in {d.label_b}): "
                     f"{_id_list(d.new_tasks)}")
    if d.removed_tasks:
        lines.append(f"removed tasks (only in {d.label_a}): "
                     f"{_id_list(d.removed_tasks)}")
    if d.has_fault_activity():
        lines.append("fault/recovery overhead:")
        for k in _RECOVERY_KEYS:
            a = d.recovery_a.get(k, 0.0)
            b = d.recovery_b.get(k, 0.0)
            if a or b:
                if k.endswith("_seconds"):
                    lines.append(f"  {k:<22} {_sec(a)} -> {_sec(b)}")
                else:
                    lines.append(f"  {k:<22} {a:g} -> {b:g}")
    return "\n".join(lines)


def _id_list(ids: list[int], limit: int = 12) -> str:
    shown = ", ".join(f"t{t}" for t in ids[:limit])
    if len(ids) > limit:
        shown += f", ... ({len(ids) - limit} more)"
    return shown


def attribution_report(events: list[Event], top: int = 5) -> str:
    """Single-run attribution (used when no baseline trace exists).

    Summarizes where one run's time went: phase totals, the longest
    tasks, and the critical-path breakdown.
    """
    lines = []
    totals = _phase_totals(events)
    if totals:
        lines.append(
            "phases: "
            + ", ".join(
                f"{c} {v:.6f}s"
                for c, v in sorted(totals.items(), key=lambda kv: -kv[1])
            )
        )
    dag = causal_dag(events)
    longest = sorted(
        dag.spans.values(), key=lambda s: (-s.compute, s.task)
    )[:top]
    if longest:
        lines.append(
            "longest tasks: "
            + ", ".join(f"t{s.task} {s.compute:.6f}s" for s in longest)
        )
    cp = critical_path(events)
    if cp.steps:
        lines.append(f"critical path: {cp.breakdown()}")
    return "\n".join(lines)
