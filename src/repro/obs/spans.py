"""Causal task spans: the trace as a DAG instead of a flat stream.

Exporters request *span context* (``EventSink.wants_context``), which
makes every ``task_started`` event carry the ``parents`` tuple — the
producer task id behind each payload the attempt consumed.  Together
with the ``task``/``dst_task`` pair on every message event, an exported
trace is therefore a causal DAG (task -> message -> task), and this
module is its query layer:

* :class:`CausalDag` — one :class:`TaskSpan` per task plus the parent /
  child edge maps, built by :func:`causal_dag` from a single run's
  events.  Traces without explicit ``parents`` (older files, plain
  sinks) fall back to edges derived from ``message_delivered`` events.
* :func:`causal_dag(...).lineage(t)` — every ancestor a task causally
  depends on; ``wait_for(t)`` explains *that task's* latency with the
  critical-path buckets (compute / overhead / network / wait).
* :func:`recovery_accounting` — the fault-tolerance overhead of a run
  (wasted attempt seconds, replayed compute, recovery tail, fault
  counters), derived purely from the ``FAULT_VOCABULARY`` events.
* :func:`folded_stacks` — the DAG rendered as folded stacks (one
  ``a;b;c weight`` line per task along its binding ancestry), the input
  format of every flamegraph renderer.

Everything here is offline analysis over an already-captured stream —
nothing touches the simulator hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.critical_path import CriticalPath, critical_path
from repro.obs.events import (
    FAULT_INJECTED,
    MESSAGE_DELIVERED,
    RANK_DEAD,
    RUN_FINISHED,
    TASK_FINISHED,
    TASK_MIGRATED,
    TASK_RETRY,
    TASK_STARTED,
    Event,
)

__all__ = [
    "TaskSpan",
    "CausalDag",
    "causal_dag",
    "recovery_accounting",
    "folded_stacks",
]


@dataclass(frozen=True)
class TaskSpan:
    """The final (successful) execution of one task, plus its history.

    Attributes:
        task: task id.
        proc: proc the final attempt ran on.
        start: compute start of the final attempt (virtual seconds).
        end: compute end of the final attempt.
        compute: compute time of the final attempt.
        parents: causal producers of the final attempt, in arrival
            order (one entry per input slot).
        attempts: executions observed in the stream (1 on a clean run;
            failed attempts and lineage replays add to it).
        wasted: seconds burned by this task's failed/timed-out attempts.
        retries: ``task.retry`` events for this task.
    """

    task: int
    proc: int
    start: float
    end: float
    compute: float
    parents: tuple[int, ...] = ()
    attempts: int = 1
    wasted: float = 0.0
    retries: int = 0

    @property
    def span(self) -> float:
        return self.end - self.start


@dataclass
class CausalDag:
    """Per-task spans plus parent/child edges of one run's trace.

    ``explicit`` records whether the edges came from span context
    (``task_started.parents``) or were derived from message events —
    both yield the task graph's real producer edges, but only explicit
    context survives for runs whose messages were not exported.
    """

    spans: dict[int, TaskSpan] = field(default_factory=dict)
    children: dict[int, tuple[int, ...]] = field(default_factory=dict)
    explicit: bool = False
    #: the single-run event stream the DAG was built from
    events: list[Event] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.spans)

    def __contains__(self, task: int) -> bool:
        return task in self.spans

    def parents_of(self, task: int) -> tuple[int, ...]:
        """Causal producers of ``task`` (deduplicated, arrival order)."""
        span = self.spans.get(task)
        if span is None:
            return ()
        return tuple(dict.fromkeys(span.parents))

    def children_of(self, task: int) -> tuple[int, ...]:
        return self.children.get(task, ())

    def sources(self) -> list[int]:
        """Tasks with no causal parents (externally fed)."""
        return sorted(t for t, s in self.spans.items() if not s.parents)

    def sinks(self) -> list[int]:
        """Tasks nothing consumed from (the run's outputs)."""
        return sorted(t for t in self.spans if not self.children.get(t))

    def lineage(self, task: int) -> list[int]:
        """Every ancestor ``task`` causally depends on (BFS, task first).

        The returned list starts at ``task`` and ends at the sources —
        the set of executions that had to happen for this output to
        exist.
        """
        if task not in self.spans:
            raise KeyError(f"task {task} is not in this trace")
        order: dict[int, None] = {task: None}
        queue = [task]
        while queue:
            cur = queue.pop(0)
            for p in self.parents_of(cur):
                if p not in order and p in self.spans:
                    order[p] = None
                    queue.append(p)
        return list(order)

    def wait_for(self, task: int) -> CriticalPath:
        """Critical-path attribution of ``task``'s finish time.

        Walks the binding dependency chain backward from ``task`` (not
        from the run's last finisher), answering "what was this output
        waiting for?" in the four makespan buckets.
        """
        return critical_path(self.events, sink=task)

    def recovery_overhead(self, task: int) -> dict[str, float]:
        """Fault/recovery seconds attributable to ``task``'s lineage.

        Sums the wasted attempt time and retry backoff of every span the
        task causally depends on (itself included) — the per-sink
        fault-overhead attribution.
        """
        wasted = 0.0
        retries = 0
        extra_attempts = 0
        for t in self.lineage(task):
            s = self.spans[t]
            wasted += s.wasted
            retries += s.retries
            extra_attempts += s.attempts - 1
        return {
            "wasted_seconds": wasted,
            "retries": float(retries),
            "extra_attempts": float(extra_attempts),
        }


def causal_dag(events: list[Event]) -> CausalDag:
    """Build the causal DAG of one run's event stream.

    Prefers explicit span context (``task_started.parents``); falls back
    to deriving edges from ``message_delivered`` events when the stream
    carries none (plain sinks, pre-context traces).
    """
    starts: dict[int, Event] = {}
    finishes: dict[int, list[Event]] = {}
    retries: dict[int, int] = {}
    faults: dict[int, int] = {}
    delivered: dict[int, list[int]] = {}
    explicit = False
    for ev in events:
        if ev.type == TASK_STARTED:
            starts[ev.task] = ev  # last attempt wins
            if ev.parents:
                explicit = True
        elif ev.type == TASK_FINISHED:
            finishes.setdefault(ev.task, []).append(ev)
        elif ev.type == TASK_RETRY:
            retries[ev.task] = retries.get(ev.task, 0) + 1
        elif ev.type == FAULT_INJECTED and ev.category in ("task", "timeout"):
            faults[ev.task] = faults.get(ev.task, 0) + 1
        elif ev.type == MESSAGE_DELIVERED and ev.dst_task >= 0 and ev.task >= 0:
            delivered.setdefault(ev.dst_task, []).append(ev.task)

    dag = CausalDag(explicit=explicit, events=events)
    children: dict[int, dict[int, None]] = {}
    for task, fins in finishes.items():
        # The first `faults[task]` finishes are failed/timed-out attempts
        # (transient faults consume their attempt before the successful
        # executions, including lineage replays); the last one is the
        # span that produced the outputs downstream consumed.
        n_failed = min(faults.get(task, 0), len(fins) - 1) \
            if len(fins) > 1 else 0
        final = fins[-1]
        start_ev = starts.get(task)
        if explicit and start_ev is not None:
            parents = start_ev.parents
        else:
            parents = tuple(delivered.get(task, ()))
        start_t = start_ev.t if start_ev is not None else final.t - final.dur
        dag.spans[task] = TaskSpan(
            task=task,
            proc=final.proc,
            start=start_t,
            end=final.t,
            compute=final.dur,
            parents=parents,
            attempts=len(fins),
            wasted=sum(f.dur for f in fins[:n_failed]),
            retries=retries.get(task, 0),
        )
        for p in parents:
            children.setdefault(p, {}).setdefault(task, None)
    dag.children = {p: tuple(c) for p, c in children.items()}
    return dag


def recovery_accounting(events: list[Event]) -> dict[str, float]:
    """PR 3's fault/recovery overhead, derived from one run's events.

    Returns zeroed counters for a clean run, so callers can gate their
    reporting on ``faults_injected > 0``.  ``wasted_seconds`` is the
    compute burned by failed/timed-out attempts; ``replayed_seconds`` is
    compute re-executed by lineage replay after a rank death;
    ``recovery_tail_seconds`` is the makespan past the first fault — the
    end-to-end cost of running under faults.
    """
    acc = {
        "faults_injected": 0.0,
        "task_retries": 0.0,
        "rank_deaths": 0.0,
        "tasks_migrated": 0.0,
        "messages_dropped": 0.0,
        "wasted_seconds": 0.0,
        "replayed_seconds": 0.0,
        "retry_backoff_seconds": 0.0,
        "recovery_tail_seconds": 0.0,
        "first_fault_time": 0.0,
    }
    first_fault: float | None = None
    makespan = 0.0
    for ev in events:
        if ev.type == FAULT_INJECTED:
            acc["faults_injected"] += 1
            if ev.category == "link":
                acc["messages_dropped"] += 1
            if first_fault is None or ev.t < first_fault:
                first_fault = ev.t
        elif ev.type == TASK_RETRY:
            acc["task_retries"] += 1
            acc["retry_backoff_seconds"] += ev.dur
        elif ev.type == RANK_DEAD:
            acc["rank_deaths"] += 1
            if first_fault is None or ev.t < first_fault:
                first_fault = ev.t
        elif ev.type == TASK_MIGRATED:
            acc["tasks_migrated"] += 1
        elif ev.type == RUN_FINISHED:
            makespan = max(makespan, ev.t)
        elif ev.type == TASK_FINISHED:
            makespan = max(makespan, ev.t)
    if acc["faults_injected"] or acc["rank_deaths"]:
        dag = causal_dag(events)
        for span in dag.spans.values():
            acc["wasted_seconds"] += span.wasted
            # Successful executions beyond the first that were not
            # failed attempts are lineage replays of this task.
            replays = max(0, span.attempts - 1 - span.retries)
            acc["replayed_seconds"] += replays * span.compute
    if first_fault is not None:
        acc["first_fault_time"] = first_fault
        acc["recovery_tail_seconds"] = max(0.0, makespan - first_fault)
    return acc


def folded_stacks(
    events: list[Event], weight: str = "compute"
) -> list[str]:
    """Render one run's causal DAG as folded flamegraph stacks.

    One line per task: its binding ancestry (the parent whose span
    finished last, i.e. the dependency that actually gated it) from
    source to the task itself, semicolon-joined, followed by the task's
    weight in integer microseconds.  Feed the result to any
    ``flamegraph.pl``-compatible renderer.

    Args:
        weight: ``"compute"`` (callback seconds of the final attempt) or
            ``"span"`` (start-to-end residency — useful for cost-model-free
            runs where compute is 0).
    """
    if weight not in ("compute", "span"):
        raise ValueError(f"weight must be 'compute' or 'span', not {weight!r}")
    dag = causal_dag(events)
    lines = []
    for task in sorted(dag.spans):
        chain = [task]
        seen = {task}
        cur = task
        while True:
            parents = [
                p for p in dag.parents_of(cur) if p in dag.spans and p not in seen
            ]
            if not parents:
                break
            # Binding parent: the producer that finished last gated us.
            cur = max(parents, key=lambda p: (dag.spans[p].end, p))
            seen.add(cur)
            chain.append(cur)
        chain.reverse()
        span = dag.spans[task]
        w = span.compute if weight == "compute" else span.span
        lines.append(
            ";".join(f"t{t}" for t in chain) + f" {max(0, round(w * 1e6))}"
        )
    return lines
