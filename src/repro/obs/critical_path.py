"""Critical-path analysis over an executed event stream.

Walks the *actual* dependency chain of a finished run backwards from the
last task to finish and attributes the makespan to four buckets:

* ``compute`` — callback time on the chain,
* ``overhead`` — runtime bookkeeping attached to chain tasks (dispatch,
  staging, launch, de-/serialization, ...),
* ``network`` — send-to-delivery time of the binding input message of
  each chain task,
* ``wait`` — everything else: queueing behind busy cores, round
  barriers, spawn skew (the gap between a task's binding input arriving
  and its compute starting, minus the overhead paid in between).

Per backend the same graph yields very different splits — the analysis
makes the *why* of Figs. 3/6/10 quantitative instead of eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import (
    MESSAGE_DELIVERED,
    OVERHEAD,
    TASK_FINISHED,
    TASK_STARTED,
    Event,
)

#: Makespan attribution buckets, in report order.
BUCKETS = ("compute", "overhead", "network", "wait")


@dataclass(frozen=True)
class PathStep:
    """One task on the critical path (source-to-sink order)."""

    task: int
    proc: int
    start: float
    end: float
    compute: float
    overhead: float
    network: float  # transfer time of the binding input message
    wait: float  # un-attributed gap before compute started

    @property
    def total(self) -> float:
        return self.compute + self.overhead + self.network + self.wait


@dataclass
class CriticalPath:
    """The executed longest chain and its makespan attribution."""

    steps: list[PathStep] = field(default_factory=list)
    makespan: float = 0.0
    totals: dict[str, float] = field(default_factory=dict)

    @property
    def tasks(self) -> list[int]:
        """Task ids along the path, source first."""
        return [s.task for s in self.steps]

    def breakdown(self) -> str:
        """One-line ``bucket time (share)`` summary."""
        if self.makespan <= 0:
            return "(empty run)"
        parts = [
            f"{b} {self.totals.get(b, 0.0):.6f}s "
            f"({self.totals.get(b, 0.0) / self.makespan:.1%})"
            for b in BUCKETS
        ]
        return " + ".join(parts)


def critical_path(
    events: list[Event], sink: int | None = None
) -> CriticalPath:
    """Analyze one run's event stream (a single run's events).

    The stream must contain ``task_started``/``task_finished`` pairs;
    ``message_delivered`` events define the dependency edges and
    ``overhead`` events refine the attribution.  Streams from any
    backend — including the serial controller's zero-duration messages —
    are accepted.

    Args:
        sink: walk backward from this task instead of the last-finishing
            one (wait-for attribution of an arbitrary output).  The
            returned ``makespan`` is then the sink's finish time, i.e.
            the path explains *that task's* latency, not the run's.
    """
    starts: dict[int, Event] = {}
    ends: dict[int, Event] = {}
    overhead_of: dict[int, float] = {}
    incoming: dict[int, list[Event]] = {}
    for ev in events:
        if ev.type == TASK_STARTED:
            starts[ev.task] = ev  # retries: last attempt wins
        elif ev.type == TASK_FINISHED:
            ends[ev.task] = ev
        elif ev.type == OVERHEAD and ev.task >= 0 and ev.dst_task < 0:
            # Per-edge sender-side costs (serialization: task=producer,
            # dst_task=consumer) happen after the producer's compute and
            # are not part of its pre-compute gap — skip them here.
            overhead_of[ev.task] = overhead_of.get(ev.task, 0.0) + ev.dur
        elif ev.type == MESSAGE_DELIVERED and ev.dst_task >= 0:
            incoming.setdefault(ev.dst_task, []).append(ev)

    cp = CriticalPath(totals={b: 0.0 for b in BUCKETS})
    if not ends:
        return cp

    if sink is None:
        sink = max(ends, key=lambda t: (ends[t].t, t))
    elif sink not in ends:
        raise ValueError(f"task {sink} never finished in this stream")
    cp.makespan = ends[sink].t

    steps_rev: list[PathStep] = []
    cur: int | None = sink
    visited: set[int] = set()
    while cur is not None and cur not in visited:
        visited.add(cur)
        end_ev = ends[cur]
        start_ev = starts.get(cur)
        start_t = start_ev.t if start_ev is not None else end_ev.t - end_ev.dur
        compute = end_ev.dur
        ovh = overhead_of.get(cur, 0.0)

        msgs = incoming.get(cur, ())
        binding = max(msgs, key=lambda m: m.t) if msgs else None
        if binding is not None:
            network = binding.dur
            ready_t = binding.t
            producer = binding.task if binding.task in ends else None
        else:
            network = 0.0
            ready_t = 0.0  # source task: gate is the start of the run
            producer = None

        wait = max(0.0, start_t - ready_t - ovh)
        steps_rev.append(
            PathStep(
                task=cur,
                proc=end_ev.proc,
                start=start_t,
                end=end_ev.t,
                compute=compute,
                overhead=ovh,
                network=network,
                wait=wait,
            )
        )
        cur = producer

    cp.steps = list(reversed(steps_rev))
    for s in cp.steps:
        cp.totals["compute"] += s.compute
        cp.totals["overhead"] += s.overhead
        cp.totals["network"] += s.network
        cp.totals["wait"] += s.wait
    return cp


__all__ = ["BUCKETS", "CriticalPath", "PathStep", "critical_path"]
