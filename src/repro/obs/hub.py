"""The per-run fan-out point for observability events.

A controller owns one :class:`ObsHub` per run.  The hub is deliberately
tiny: it is truthy only when at least one sink is attached (or a live
bus is tapped), so emission sites guard with ``if hub:`` and skip event
construction entirely on unobserved runs — the zero-cost-when-unobserved
contract.

Besides sinks — the post-hoc consumers — a hub may carry one *live bus*
(:class:`repro.obs.live.LiveBus`): a thread-safe side channel whose
subscribers watch the run while it is still in flight.  The bus receives
every event the sinks do, but it is not a sink: it never blocks, never
raises into the run, and live-only event types
(:data:`~repro.obs.events.LIVE_VOCABULARY`) are published straight to
the bus without touching the sinks, keeping recorded streams unchanged.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import Event, EventSink

__all__ = ["ObsHub", "NULL_HUB"]


class ObsHub:
    """Broadcasts events to a fixed tuple of sinks (plus a live bus).

    ``wants_context`` aggregates the attached sinks' capability flags:
    it is True iff at least one sink asked for span-context threading
    (:attr:`~repro.obs.events.EventSink.wants_context`), in which case
    controllers stamp causal ``parents`` onto ``task_started`` events.

    ``bus`` is duck-typed (anything with a ``publish(event)`` method)
    so this module never imports :mod:`repro.obs.live`; it is ``None``
    on every run that is not being watched, and the extra ``is None``
    test per emission is only paid on *observed* runs.
    """

    __slots__ = ("sinks", "wants_context", "bus")

    def __init__(
        self, sinks: Iterable[EventSink] = (), bus=None
    ) -> None:
        self.sinks: tuple[EventSink, ...] = tuple(sinks)
        self.wants_context: bool = any(
            getattr(s, "wants_context", False) for s in self.sinks
        )
        self.bus = bus

    def __bool__(self) -> bool:
        return bool(self.sinks) or self.bus is not None

    def emit(self, event: Event) -> None:
        """Deliver one event to every sink, then to the live bus."""
        for sink in self.sinks:
            sink.emit(event)
        bus = self.bus
        if bus is not None:
            bus.publish(event)


#: Shared empty hub for controllers that were never given sinks.
NULL_HUB = ObsHub()
