"""The per-run fan-out point for observability events.

A controller owns one :class:`ObsHub` per run.  The hub is deliberately
tiny: it is truthy only when at least one sink is attached, so emission
sites guard with ``if hub:`` and skip event construction entirely on
unobserved runs — the zero-cost-when-unobserved contract.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import Event, EventSink

__all__ = ["ObsHub", "NULL_HUB"]


class ObsHub:
    """Broadcasts events to a fixed tuple of sinks.

    ``wants_context`` aggregates the attached sinks' capability flags:
    it is True iff at least one sink asked for span-context threading
    (:attr:`~repro.obs.events.EventSink.wants_context`), in which case
    controllers stamp causal ``parents`` onto ``task_started`` events.
    """

    __slots__ = ("sinks", "wants_context")

    def __init__(self, sinks: Iterable[EventSink] = ()) -> None:
        self.sinks: tuple[EventSink, ...] = tuple(sinks)
        self.wants_context: bool = any(
            getattr(s, "wants_context", False) for s in self.sinks
        )

    def __bool__(self) -> bool:
        return bool(self.sinks)

    def emit(self, event: Event) -> None:
        """Deliver one event to every sink, in attachment order."""
        for sink in self.sinks:
            sink.emit(event)


#: Shared empty hub for controllers that were never given sinks.
NULL_HUB = ObsHub()
