"""Runtime observability: events, metrics, exporters, critical path.

The paper's pitch is one task graph on many runtimes; this subsystem
makes the *differences* between those runtimes measurable.  Every
controller emits the same structured event vocabulary
(:mod:`repro.obs.events`) through attached :class:`EventSink` objects,
keeps an always-on :class:`MetricsRegistry`
(:mod:`repro.obs.metrics`) snapshotted into each
:class:`~repro.runtimes.result.RunResult`, and can stream runs to
Chrome-trace / JSONL files (:mod:`repro.obs.export`) for Perfetto or
the ``python -m repro.obs`` CLI (summarize / timeline / flamegraph /
diff / slo), including critical-path attribution
(:mod:`repro.obs.critical_path`), causal-DAG queries
(:mod:`repro.obs.spans`), per-rank resource timelines
(:mod:`repro.obs.timeline`), and trace diffing (:mod:`repro.obs.diff`).

For production-scale capture there is a bounded-memory telemetry layer
(:mod:`repro.obs.telemetry`): streaming quantile sketches, head+tail
trace sampling (:class:`SamplingSink`), an always-on flight recorder,
and a cross-run metrics ledger behind ``python -m repro.obs trends``.

Quick start::

    from repro.obs import ChromeTraceExporter, ListSink, critical_path

    sink = ListSink()
    controller = MPIController(4, sinks=[sink])
    result = workload.run(controller)
    cp = critical_path(sink.events)
    print(cp.breakdown(), result.metrics.summary())
"""

from repro.obs.critical_path import BUCKETS, CriticalPath, PathStep, critical_path
from repro.obs.events import (
    CORE_VOCABULARY,
    FAULT_INJECTED,
    FAULT_VOCABULARY,
    LIVE_VOCABULARY,
    MESSAGE_DELIVERED,
    MESSAGE_SENT,
    MIGRATION,
    OVERHEAD,
    RANK_DEAD,
    RUN_FINISHED,
    RUN_STARTED,
    SCHED_MIGRATED,
    PLAN_FALLBACK,
    SCHED_PLANNED,
    SCHED_STEAL,
    SCHED_VOCABULARY,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_MIGRATED,
    TASK_RETRY,
    TASK_RUNNING,
    TASK_STARTED,
    VOCABULARY,
    WORKER_HEARTBEAT,
    Event,
    EventSink,
    ListSink,
)
from repro.obs.live import (
    LiveBus,
    LiveConfig,
    ProgressTracker,
    StragglerDetector,
    attach_live,
    prometheus_text,
)
from repro.obs.export import (
    ChromeTraceExporter,
    JsonlExporter,
    events_from_chrome,
    events_from_jsonl,
    load_events,
    split_runs,
)
from repro.obs.diff import (
    RunDiff,
    attribution_report,
    diff_runs,
    diff_traces,
    render_diff,
)
from repro.obs.hub import NULL_HUB, ObsHub
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    TimeSeries,
)
from repro.obs.telemetry import (
    FlightRecorder,
    Ledger,
    QuantileSketch,
    SamplingSink,
    TelemetryConfig,
    when,
)
from repro.obs.spans import (
    CausalDag,
    TaskSpan,
    causal_dag,
    folded_stacks,
    recovery_accounting,
)
from repro.obs.timeline import (
    RunTimelines,
    ascii_timeline,
    resource_timelines,
    svg_timeline,
)

__all__ = [
    "BUCKETS",
    "CORE_VOCABULARY",
    "CausalDag",
    "ChromeTraceExporter",
    "Counter",
    "CriticalPath",
    "Event",
    "EventSink",
    "FAULT_INJECTED",
    "FAULT_VOCABULARY",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "LIVE_VOCABULARY",
    "Ledger",
    "ListSink",
    "LiveBus",
    "LiveConfig",
    "MESSAGE_DELIVERED",
    "MESSAGE_SENT",
    "MIGRATION",
    "SCHED_MIGRATED",
    "PLAN_FALLBACK",
    "SCHED_PLANNED",
    "SCHED_STEAL",
    "SCHED_VOCABULARY",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_HUB",
    "OVERHEAD",
    "ObsHub",
    "PathStep",
    "ProgressTracker",
    "QuantileSketch",
    "RANK_DEAD",
    "RUN_FINISHED",
    "RUN_STARTED",
    "RunDiff",
    "RunTimelines",
    "SamplingSink",
    "StragglerDetector",
    "TASK_ENQUEUED",
    "TASK_FINISHED",
    "TASK_MIGRATED",
    "TASK_RETRY",
    "TASK_RUNNING",
    "TASK_STARTED",
    "TaskSpan",
    "TelemetryConfig",
    "TimeSeries",
    "VOCABULARY",
    "WORKER_HEARTBEAT",
    "ascii_timeline",
    "attach_live",
    "attribution_report",
    "causal_dag",
    "critical_path",
    "diff_runs",
    "diff_traces",
    "events_from_chrome",
    "events_from_jsonl",
    "folded_stacks",
    "load_events",
    "prometheus_text",
    "recovery_accounting",
    "render_diff",
    "resource_timelines",
    "split_runs",
    "svg_timeline",
    "when",
]
