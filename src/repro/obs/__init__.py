"""Runtime observability: events, metrics, exporters, critical path.

The paper's pitch is one task graph on many runtimes; this subsystem
makes the *differences* between those runtimes measurable.  Every
controller emits the same structured event vocabulary
(:mod:`repro.obs.events`) through attached :class:`EventSink` objects,
keeps an always-on :class:`MetricsRegistry`
(:mod:`repro.obs.metrics`) snapshotted into each
:class:`~repro.runtimes.result.RunResult`, and can stream runs to
Chrome-trace / JSONL files (:mod:`repro.obs.export`) for Perfetto or
the ``python -m repro.obs summarize`` CLI, including critical-path
attribution (:mod:`repro.obs.critical_path`).

Quick start::

    from repro.obs import ChromeTraceExporter, ListSink, critical_path

    sink = ListSink()
    controller = MPIController(4, sinks=[sink])
    result = workload.run(controller)
    cp = critical_path(sink.events)
    print(cp.breakdown(), result.metrics.summary())
"""

from repro.obs.critical_path import BUCKETS, CriticalPath, PathStep, critical_path
from repro.obs.events import (
    CORE_VOCABULARY,
    FAULT_INJECTED,
    FAULT_VOCABULARY,
    MESSAGE_DELIVERED,
    MESSAGE_SENT,
    MIGRATION,
    OVERHEAD,
    RANK_DEAD,
    RUN_FINISHED,
    RUN_STARTED,
    TASK_ENQUEUED,
    TASK_FINISHED,
    TASK_MIGRATED,
    TASK_RETRY,
    TASK_STARTED,
    VOCABULARY,
    Event,
    EventSink,
    ListSink,
)
from repro.obs.export import (
    ChromeTraceExporter,
    JsonlExporter,
    events_from_chrome,
    events_from_jsonl,
    load_events,
    split_runs,
)
from repro.obs.hub import NULL_HUB, ObsHub
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)

__all__ = [
    "BUCKETS",
    "CORE_VOCABULARY",
    "ChromeTraceExporter",
    "Counter",
    "CriticalPath",
    "Event",
    "EventSink",
    "FAULT_INJECTED",
    "FAULT_VOCABULARY",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "ListSink",
    "MESSAGE_DELIVERED",
    "MESSAGE_SENT",
    "MIGRATION",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_HUB",
    "OVERHEAD",
    "ObsHub",
    "PathStep",
    "RANK_DEAD",
    "RUN_FINISHED",
    "RUN_STARTED",
    "TASK_ENQUEUED",
    "TASK_FINISHED",
    "TASK_MIGRATED",
    "TASK_RETRY",
    "TASK_STARTED",
    "VOCABULARY",
    "critical_path",
    "events_from_chrome",
    "events_from_jsonl",
    "load_events",
    "split_runs",
]
