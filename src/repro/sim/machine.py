"""Machine models.

:class:`MachineSpec` captures the knobs of the simulated cluster.  The
default values are loosely calibrated to the paper's testbed — Shaheen II,
a Cray XC40 with dual-socket 16-core Haswell nodes (32 cores/node) and an
Aries Dragonfly interconnect — at the fidelity the reproduction needs:
per-message latency, link/injection bandwidth, and a cheaper intra-node
path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the simulated cluster.

    Attributes:
        cores_per_node: physical cores per node (Shaheen II: 32).
        inter_latency: one-way latency of an inter-node message (s).
        inter_bandwidth: per-rank injection bandwidth for inter-node
            traffic (B/s).
        intra_latency: latency of an intra-node (shared-memory) transfer.
        intra_bandwidth: intra-node copy bandwidth (B/s).
        core_speed: relative compute speed multiplier; cost models divide
            their nominal durations by this, so a value of 2.0 simulates a
            machine twice as fast as the calibration host.
    """

    cores_per_node: int = 32
    inter_latency: float = 2.0e-6
    inter_bandwidth: float = 8.0e9
    intra_latency: float = 3.0e-7
    intra_bandwidth: float = 4.0e10
    core_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        for attr in (
            "inter_latency",
            "inter_bandwidth",
            "intra_latency",
            "intra_bandwidth",
            "core_speed",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    def nodes_for(self, cores: int) -> int:
        """Number of nodes needed to host ``cores`` cores."""
        return -(-cores // self.cores_per_node)

    def with_(self, **kwargs) -> "MachineSpec":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)


#: Shaheen II-flavoured default machine used by all benchmarks.
SHAHEEN_II = MachineSpec()
