"""Simulated serving resources (cores, NICs).

A :class:`Resource` is a non-preemptive FIFO server: work items submitted
to it execute back to back, each for a caller-specified virtual duration.
:class:`MultiResource` generalizes to ``k`` identical servers (a thread
pool, a multi-core node) using earliest-available assignment.

Because the discrete-event engine fires events in time order, every
``submit`` happens at the current virtual time and the closed-form
``start = max(now, server_free)`` bookkeeping is exact — no token/queue
machinery is needed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.core.errors import SimulationError
from repro.sim.engine import Engine


class Resource:
    """A single FIFO server.

    Attributes:
        busy_time: total virtual seconds spent serving (for utilization).
    """

    __slots__ = ("_engine", "name", "_free_at", "busy_time", "jobs_served")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self._engine = engine
        self.name = name
        self._free_at = 0.0
        self.busy_time = 0.0
        self.jobs_served = 0

    def submit(
        self, duration: float, fn: Callable[..., Any] | None = None, *args: Any
    ) -> tuple[float, float]:
        """Enqueue a job of ``duration`` virtual seconds.

        Returns ``(start, end)`` times; if ``fn`` is given it fires at
        ``end``.
        """
        if duration < 0:
            raise SimulationError(f"negative duration {duration}")
        engine = self._engine
        start = engine._now
        if self._free_at > start:
            start = self._free_at
        end = start + duration
        self._free_at = end
        self.busy_time += duration
        self.jobs_served += 1
        if fn is not None:
            engine.call_at(end, fn, *args)
        return start, end

    @property
    def free_at(self) -> float:
        """Virtual time at which the server next becomes idle."""
        return max(self._free_at, self._engine.now)

    def backlog(self) -> float:
        """Queued-but-unserved virtual seconds as of now."""
        return max(0.0, self._free_at - self._engine.now)


class MultiResource:
    """``k`` identical FIFO servers with earliest-available dispatch."""

    __slots__ = (
        "_engine", "name", "servers", "_free", "busy_time", "jobs_served"
    )

    def __init__(self, engine: Engine, servers: int, name: str = "") -> None:
        if servers <= 0:
            raise SimulationError(f"servers must be positive, got {servers}")
        self._engine = engine
        self.name = name
        self.servers = servers
        # Heap of (free_at, server_index); lazily clamped to `now`.
        self._free: list[tuple[float, int]] = [(0.0, i) for i in range(servers)]
        heapq.heapify(self._free)
        self.busy_time = 0.0
        self.jobs_served = 0

    def submit(
        self, duration: float, fn: Callable[..., Any] | None = None, *args: Any
    ) -> tuple[float, float]:
        """Enqueue a job on the earliest-available server.

        Returns ``(start, end)``; ``fn(*args)`` fires at ``end`` if given.
        """
        if duration < 0:
            raise SimulationError(f"negative duration {duration}")
        free_at, idx = heapq.heappop(self._free)
        start = self._engine._now
        if free_at > start:
            start = free_at
        end = start + duration
        heapq.heappush(self._free, (end, idx))
        self.busy_time += duration
        self.jobs_served += 1
        if fn is not None:
            self._engine.call_at(end, fn, *args)
        return start, end

    def earliest_free(self) -> float:
        """Virtual time at which some server is next idle."""
        return max(self._free[0][0], self._engine.now)
