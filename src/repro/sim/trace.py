"""Execution traces and timing statistics.

Controllers record what happened on the simulated cluster: compute spans,
message spans, runtime-overhead spans.  :class:`Trace` stores full records
(optional, for debugging and timeline inspection); :class:`Stats`
aggregates per-category totals cheaply and is always collected.

Since the :mod:`repro.obs` subsystem landed, span collection sits *on
top* of the structured event stream: :class:`Trace` is an
:class:`~repro.obs.events.EventSink`, and ``collect_trace=True`` on a
controller simply attaches a fresh ``Trace`` to the run's sinks.  Spans
are synthesized from ``task_started``/``task_finished``, ``overhead``
and ``message_delivered`` events; direct :meth:`Trace.record` calls
remain supported for code that builds traces by hand.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import events as _ev
from repro.obs.events import Event, EventSink


@dataclass(frozen=True)
class Span:
    """One recorded interval on the simulated timeline."""

    category: str
    proc: int
    start: float
    end: float
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace(EventSink):
    """Ordered collection of :class:`Span` records.

    Keeping full traces at 32k simulated procs is expensive, so traces are
    opt-in; the aggregate :class:`Stats` suffices for the benchmarks.

    As an :class:`~repro.obs.events.EventSink`, a ``Trace`` can be
    attached to any controller (that is how ``collect_trace=True`` is
    implemented) or replayed from a saved event log::

        trace = Trace()
        for event in load_events(path):
            trace.emit(event)
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def record(
        self, category: str, proc: int, start: float, end: float, label: str = ""
    ) -> None:
        """Append a span."""
        self.spans.append(Span(category, proc, start, end, label))

    def emit(self, event: Event) -> None:
        """Synthesize spans from a structured lifecycle event.

        ``task_finished`` becomes a ``compute`` span, ``overhead`` a span
        of its category, ``message_delivered`` a ``message`` span on the
        sending proc.  Zero-duration overheads and in-proc messages are
        skipped, matching the historical span stream.
        """
        if event.type == _ev.TASK_FINISHED:
            self.record(
                "compute",
                event.proc,
                event.t - event.dur,
                event.t,
                event.label or f"t{event.task}",
            )
        elif event.type == _ev.OVERHEAD and event.dur > 0.0:
            self.record(
                event.category or "overhead",
                event.proc,
                event.t - event.dur,
                event.t,
                event.label,
            )
        elif event.type == _ev.MESSAGE_DELIVERED and event.dur > 0.0:
            self.record(
                "message",
                event.proc,
                event.t - event.dur,
                event.t,
                event.label or f"->{event.dst_proc}",
            )

    def by_category(self, category: str) -> list[Span]:
        """All spans of one category, in record order."""
        return [s for s in self.spans if s.category == category]

    def makespan(self) -> float:
        """Latest end time across all spans (0 when empty)."""
        return max((s.end for s in self.spans), default=0.0)

    def busy_fraction(self, n_procs: int, category: str = "compute") -> float:
        """Mean utilization of ``n_procs`` procs for one span category."""
        total = sum(s.duration for s in self.spans if s.category == category)
        horizon = self.makespan()
        if horizon <= 0 or n_procs <= 0:
            return 0.0
        return total / (horizon * n_procs)

    def timeline(self, procs: Iterable[int] | None = None) -> str:
        """Human-readable dump of the trace (debug helper)."""
        keep = set(procs) if procs is not None else None
        lines = []
        for s in sorted(self.spans, key=lambda s: (s.start, s.proc)):
            if keep is not None and s.proc not in keep:
                continue
            lines.append(
                f"[{s.start:12.6f} - {s.end:12.6f}] p{s.proc:<6} "
                f"{s.category:<10} {s.label}"
            )
        return "\n".join(lines)


@dataclass
class Stats:
    """Aggregate timing statistics of one controller run.

    Attributes:
        makespan: virtual seconds from start to the last event.
        category_time: summed virtual seconds per category (``compute``,
            ``overhead``, ``serialize``, ``staging``, ...), across all
            procs.
        callback_time: summed virtual *compute* seconds per callback id
            (task type) — the per-stage breakdown of ``compute``.
        tasks_executed: number of task callbacks run.
        messages: number of dataflow messages sent.
        bytes_sent: total dataflow bytes transferred.
    """

    makespan: float = 0.0
    category_time: dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    callback_time: dict[int, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    tasks_executed: int = 0
    messages: int = 0
    bytes_sent: int = 0

    def add(self, category: str, duration: float) -> None:
        """Accumulate ``duration`` seconds under ``category``."""
        self.category_time[category] += duration

    def add_callback(self, cid: int, duration: float) -> None:
        """Accumulate compute ``duration`` under callback id ``cid``."""
        self.callback_time[cid] += duration

    def get(self, category: str) -> float:
        """Summed seconds for ``category`` (0 when absent)."""
        return self.category_time.get(category, 0.0)

    def summary(self) -> str:
        """One-line textual summary for logs and benchmark output."""
        cats = ", ".join(
            f"{k}={v:.4f}s" for k, v in sorted(self.category_time.items())
        )
        return (
            f"makespan={self.makespan:.4f}s tasks={self.tasks_executed} "
            f"msgs={self.messages} bytes={self.bytes_sent} [{cats}]"
        )
