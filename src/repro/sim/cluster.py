"""The simulated cluster: procs, cores, and the network.

A :class:`Cluster` instantiates ``n_procs`` simulated processes (MPI ranks,
Charm++ PEs, Legion shards — the controllers decide what a proc *means*)
on a :class:`~repro.sim.machine.MachineSpec`.  Each proc owns:

* a compute resource with ``cores_per_proc`` servers (the MPI controller's
  thread pool executes tasks here), and
* a transmit (NIC) resource that serializes its outgoing messages.

Message timing follows the standard postal model: the sender's NIC is
occupied for ``nbytes / bandwidth`` and the payload arrives ``latency``
seconds after injection completes.  Intra-node transfers use the faster
shared-memory path and skip the NIC queue contention of other nodes.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.errors import SimulationError
from repro.obs.events import MESSAGE_DELIVERED, MESSAGE_SENT, Event
from repro.obs.hub import NULL_HUB, ObsHub
from repro.sim.engine import Engine
from repro.sim.machine import MachineSpec
from repro.sim.resource import MultiResource, Resource
from repro.sim.trace import Trace


class Cluster:
    """``n_procs`` simulated processes on a machine model.

    Args:
        engine: the event engine driving the simulation.
        machine: hardware parameters.
        n_procs: number of simulated processes.
        cores_per_proc: compute servers per proc (1 = a proc is one core).
        trace: optional :class:`~repro.sim.trace.Trace` receiving compute
            and message records (direct span recording; the controllers
            instead attach traces as event sinks on ``obs``).
        obs: observability hub receiving ``message_sent`` /
            ``message_delivered`` events for every transfer.
    """

    def __init__(
        self,
        engine: Engine,
        machine: MachineSpec,
        n_procs: int,
        cores_per_proc: int = 1,
        trace: Trace | None = None,
        procs_per_node: int | None = None,
        obs: ObsHub = NULL_HUB,
    ) -> None:
        if n_procs <= 0:
            raise SimulationError(f"n_procs must be positive, got {n_procs}")
        if cores_per_proc <= 0:
            raise SimulationError(
                f"cores_per_proc must be positive, got {cores_per_proc}"
            )
        self.engine = engine
        self.machine = machine
        self.n_procs = n_procs
        self.cores_per_proc = cores_per_proc
        self.trace = trace
        self.obs = obs
        if procs_per_node is None:
            procs_per_node = max(1, machine.cores_per_node // cores_per_proc)
        elif procs_per_node <= 0:
            raise SimulationError(
                f"procs_per_node must be positive, got {procs_per_node}"
            )
        self.procs_per_node = procs_per_node
        self._cores = [
            MultiResource(engine, cores_per_proc, name=f"core{p}")
            for p in range(n_procs)
        ]
        self._nics = [
            Resource(engine, name=f"nic{p}") for p in range(n_procs)
        ]
        self.bytes_sent = 0
        self.messages_sent = 0

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def node_of(self, proc: int) -> int:
        """Node hosting ``proc`` (procs are packed onto nodes in order)."""
        self._check_proc(proc)
        return proc // self.procs_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when two procs share a node (fast intra-node path)."""
        return self.node_of(a) == self.node_of(b)

    @property
    def n_nodes(self) -> int:
        """Number of nodes occupied by the cluster."""
        return self.node_of(self.n_procs - 1) + 1

    # ------------------------------------------------------------------ #
    # Compute
    # ------------------------------------------------------------------ #

    def compute(
        self,
        proc: int,
        duration: float,
        fn: Callable[..., Any] | None = None,
        *args: Any,
        category: str = "compute",
        label: str = "",
    ) -> tuple[float, float]:
        """Run work of ``duration`` virtual seconds on ``proc``'s cores.

        The duration is divided by the machine's ``core_speed``.  Returns
        ``(start, end)``; ``fn(*args)`` fires at ``end`` if given.
        """
        self._check_proc(proc)
        scaled = duration / self.machine.core_speed
        start, end = self._cores[proc].submit(scaled, fn, *args)
        if self.trace is not None:
            self.trace.record(category, proc, start, end, label)
        return start, end

    def core_busy_time(self, proc: int) -> float:
        """Total virtual compute seconds served by ``proc`` so far."""
        self._check_proc(proc)
        return self._cores[proc].busy_time

    # ------------------------------------------------------------------ #
    # Network
    # ------------------------------------------------------------------ #

    def message_time(self, src: int, dst: int, nbytes: int) -> tuple[float, float]:
        """Return ``(injection_duration, latency)`` for a message."""
        m = self.machine
        if src == dst:
            return 0.0, 0.0
        if self.same_node(src, dst):
            return nbytes / m.intra_bandwidth, m.intra_latency
        return nbytes / m.inter_bandwidth, m.inter_latency

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        src_task: int = -1,
        dst_task: int = -1,
    ) -> float:
        """Transmit ``nbytes`` from ``src`` to ``dst``; ``fn(*args)`` fires
        on delivery.

        Same-proc sends deliver immediately on the next event (zero cost:
        the controllers model any serialization/copy cost explicitly as
        compute).  Returns the delivery time.  ``src_task``/``dst_task``
        annotate the emitted ``message_sent``/``message_delivered``
        events so trace consumers can follow the dataflow edge.
        """
        self._check_proc(src)
        self._check_proc(dst)
        if nbytes < 0:
            raise SimulationError(f"negative message size {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        inject, latency = self.message_time(src, dst, nbytes)
        if src == dst:
            ev = self.engine.after(0.0, fn, *args)
            if self.obs:
                self._emit_message(
                    src, dst, nbytes, ev.time, ev.time, label, src_task, dst_task
                )
            return ev.time
        start, inj_end = self._nics[src].submit(inject)
        deliver = inj_end + latency
        self.engine.at(deliver, fn, *args)
        if self.trace is not None:
            self.trace.record("message", src, start, deliver, label or f"->{dst}")
        if self.obs:
            self._emit_message(
                src, dst, nbytes, start, deliver, label, src_task, dst_task
            )
        return deliver

    def _emit_message(
        self,
        src: int,
        dst: int,
        nbytes: int,
        start: float,
        deliver: float,
        label: str,
        src_task: int,
        dst_task: int,
    ) -> None:
        label = label or f"->{dst}"
        common = dict(
            proc=src,
            dst_proc=dst,
            task=src_task,
            dst_task=dst_task,
            nbytes=nbytes,
            label=label,
        )
        self.obs.emit(Event(MESSAGE_SENT, start, **common))
        self.obs.emit(
            Event(MESSAGE_DELIVERED, deliver, dur=deliver - start, **common)
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_proc(self, proc: int) -> None:
        if not 0 <= proc < self.n_procs:
            raise SimulationError(
                f"proc {proc} out of range [0, {self.n_procs})"
            )
