"""The simulated cluster: procs, cores, and the network.

A :class:`Cluster` instantiates ``n_procs`` simulated processes (MPI ranks,
Charm++ PEs, Legion shards — the controllers decide what a proc *means*)
on a :class:`~repro.sim.machine.MachineSpec`.  Each proc owns:

* a compute resource with ``cores_per_proc`` servers (the MPI controller's
  thread pool executes tasks here), and
* a transmit (NIC) resource that serializes its outgoing messages.

Message timing follows the standard postal model: the sender's NIC is
occupied for ``nbytes / bandwidth`` and the payload arrives ``latency``
seconds after injection completes.  Intra-node transfers use the faster
shared-memory path and skip the NIC queue contention of other nodes.

Observability flows exclusively through the event stream: controllers
attach :class:`~repro.sim.trace.Trace` (or any other sink) to ``obs``;
the historical direct span-recording path was removed.  ``compute`` and
``send`` are on the simulator's hottest path, so they build labels and
event objects only when a sink is attached.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable

from repro.core.errors import FaultError, SimulationError
from repro.obs.events import FAULT_INJECTED, MESSAGE_DELIVERED, MESSAGE_SENT, Event
from repro.obs.hub import NULL_HUB, ObsHub
from repro.sim.engine import Engine
from repro.sim.machine import MachineSpec
from repro.sim.resource import MultiResource, Resource

if TYPE_CHECKING:
    from repro.faults.plan import LinkFaultTable
    from repro.faults.policy import RetryPolicy


def _edge_label(src_task: int, dst_task: int, dst_proc: int) -> str:
    """Default message label; only built when a sink observes the run."""
    if src_task >= 0 and dst_task >= 0:
        return f"t{src_task}->t{dst_task}"
    return f"->{dst_proc}"


class Cluster:
    """``n_procs`` simulated processes on a machine model.

    Args:
        engine: the event engine driving the simulation.
        machine: hardware parameters.
        n_procs: number of simulated processes.
        cores_per_proc: compute servers per proc (1 = a proc is one core).
        obs: observability hub receiving ``message_sent`` /
            ``message_delivered`` events for every transfer.
    """

    __slots__ = (
        "engine", "machine", "n_procs", "cores_per_proc", "obs",
        "procs_per_node", "_cores", "_nics", "_core_speed", "_observed",
        "_single_core", "bytes_sent", "messages_sent",
        "_link_faults", "_retry", "messages_dropped",
        "messages_retransmitted", "first_drop_time", "_latency_sketch",
    )

    def __init__(
        self,
        engine: Engine,
        machine: MachineSpec,
        n_procs: int,
        cores_per_proc: int = 1,
        procs_per_node: int | None = None,
        obs: ObsHub = NULL_HUB,
        link_faults: "LinkFaultTable | None" = None,
        retry: "RetryPolicy | None" = None,
        latency_sketch=None,
    ) -> None:
        if n_procs <= 0:
            raise SimulationError(f"n_procs must be positive, got {n_procs}")
        if cores_per_proc <= 0:
            raise SimulationError(
                f"cores_per_proc must be positive, got {cores_per_proc}"
            )
        self.engine = engine
        self.machine = machine
        self.n_procs = n_procs
        self.cores_per_proc = cores_per_proc
        self.obs = obs
        if procs_per_node is None:
            procs_per_node = max(1, machine.cores_per_node // cores_per_proc)
        elif procs_per_node <= 0:
            raise SimulationError(
                f"procs_per_node must be positive, got {procs_per_node}"
            )
        self.procs_per_node = procs_per_node
        # A single-server MultiResource behaves exactly like Resource but
        # pays heap bookkeeping per submit; use the scalar server when a
        # proc is one core (the common case).
        if cores_per_proc == 1:
            self._cores: list[Resource | MultiResource] = [
                Resource(engine, name=f"core{p}") for p in range(n_procs)
            ]
        else:
            self._cores = [
                MultiResource(engine, cores_per_proc, name=f"core{p}")
                for p in range(n_procs)
            ]
        self._nics = [
            Resource(engine, name=f"nic{p}") for p in range(n_procs)
        ]
        # Hot-path constants hoisted out of compute()/send().  The hub's
        # sink tuple is frozen at construction, so its truthiness is too.
        self._core_speed = machine.core_speed
        self._observed = bool(obs)
        self._single_core = cores_per_proc == 1
        self.bytes_sent = 0
        self.messages_sent = 0
        # Fault layer: None on the clean path, so the per-send guard is
        # a single identity test (zero-cost when no plan is installed).
        self._link_faults = link_faults
        self._retry = retry
        self.messages_dropped = 0
        self.messages_retransmitted = 0
        self.first_drop_time: float | None = None
        # Telemetry: a QuantileSketch observing send-to-delivery latency
        # per message.  None on the clean path (zero-cost when off) —
        # the controller installs it only when telemetry is enabled.
        self._latency_sketch = latency_sketch

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def node_of(self, proc: int) -> int:
        """Node hosting ``proc`` (procs are packed onto nodes in order)."""
        self._check_proc(proc)
        return proc // self.procs_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when two procs share a node (fast intra-node path)."""
        return self.node_of(a) == self.node_of(b)

    @property
    def n_nodes(self) -> int:
        """Number of nodes occupied by the cluster."""
        return self.node_of(self.n_procs - 1) + 1

    # ------------------------------------------------------------------ #
    # Compute
    # ------------------------------------------------------------------ #

    def compute(
        self,
        proc: int,
        duration: float,
        fn: Callable[..., Any] | None = None,
        *args: Any,
    ) -> tuple[float, float]:
        """Run work of ``duration`` virtual seconds on ``proc``'s cores.

        The duration is divided by the machine's ``core_speed``.  Returns
        ``(start, end)``; ``fn(*args)`` fires at ``end`` if given.
        """
        if not 0 <= proc < self.n_procs:
            raise SimulationError(
                f"proc {proc} out of range [0, {self.n_procs})"
            )
        dur = duration / self._core_speed
        if not self._single_core:
            return self._cores[proc].submit(dur, fn, *args)
        # Single-server fast path: the FIFO bookkeeping is three field
        # updates, and the completion event goes straight onto the heap
        # (end >= now always, so the past-check in call_at cannot fire).
        if dur < 0:
            raise SimulationError(f"negative duration {dur}")
        core = self._cores[proc]
        engine = self.engine
        start = engine._now
        if core._free_at > start:
            start = core._free_at
        end = start + dur
        core._free_at = end
        core.busy_time += dur
        core.jobs_served += 1
        if fn is not None:
            heappush(engine._heap, (end, engine._next_seq(), fn, args))
        return start, end

    def core_busy_time(self, proc: int) -> float:
        """Total virtual compute seconds served by ``proc`` so far."""
        self._check_proc(proc)
        return self._cores[proc].busy_time

    # ------------------------------------------------------------------ #
    # Network
    # ------------------------------------------------------------------ #

    def message_time(self, src: int, dst: int, nbytes: int) -> tuple[float, float]:
        """Return ``(injection_duration, latency)`` for a message."""
        m = self.machine
        if src == dst:
            return 0.0, 0.0
        if self.same_node(src, dst):
            return nbytes / m.intra_bandwidth, m.intra_latency
        return nbytes / m.inter_bandwidth, m.inter_latency

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        fn: Callable[..., Any],
        *args: Any,
        label: str = "",
        src_task: int = -1,
        dst_task: int = -1,
        _attempt: int = 1,
    ) -> float:
        """Transmit ``nbytes`` from ``src`` to ``dst``; ``fn(*args)`` fires
        on delivery.

        Same-proc sends deliver immediately on the next event (zero cost:
        the controllers model any serialization/copy cost explicitly as
        compute).  Returns the delivery time.  ``src_task``/``dst_task``
        annotate the emitted ``message_sent``/``message_delivered``
        events so trace consumers can follow the dataflow edge; when no
        explicit ``label`` is given, one is derived from them lazily —
        only if a sink is attached.

        The ``src_task``/``dst_task`` pair is the message's *causal id*:
        together with ``task_started.parents`` (span context, see
        :mod:`repro.obs.spans`) it makes an exported trace a causal DAG
        (task -> message -> task).  The pair is preserved across
        link-fault retransmissions, so retransmitted payloads stay
        attributed to their original producer.

        When a link-fault table is installed (see :mod:`repro.faults`),
        active faults scale the injection/latency; a *drop* loses the
        message and schedules a sender-side retransmission after the
        retry policy's backoff (``_attempt`` tracks the retransmission
        count — a dropped message that exhausts the budget raises
        :class:`~repro.core.errors.FaultError`).
        """
        n = self.n_procs
        if not 0 <= src < n or not 0 <= dst < n:
            bad = src if not 0 <= src < n else dst
            raise SimulationError(f"proc {bad} out of range [0, {n})")
        if nbytes < 0:
            raise SimulationError(f"negative message size {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        engine = self.engine
        if src == dst:
            # In-memory delivery is due immediately: append to the
            # engine's sorted due-FIFO instead of a heap round trip.
            t = engine._now
            engine._due.append((t, engine._next_seq(), fn, args))
            if self._latency_sketch is not None:
                self._latency_sketch.observe(0.0)
            if self._observed:
                self._emit_message(
                    src, dst, nbytes, t, t, label, src_task, dst_task
                )
            return t
        m = self.machine
        if src // self.procs_per_node == dst // self.procs_per_node:
            inject = nbytes / m.intra_bandwidth
            latency = m.intra_latency
        else:
            inject = nbytes / m.inter_bandwidth
            latency = m.inter_latency
        if self._link_faults is not None:
            inject, latency, dropped = self._link_faults.apply(
                src, dst, engine._now, inject, latency
            )
            if dropped:
                return self._drop(
                    src, dst, nbytes, fn, args, label, src_task, dst_task,
                    _attempt,
                )
        # Inlined NIC bookkeeping (see compute); inject >= 0 because
        # nbytes was validated above, so deliver >= now always.
        nic = self._nics[src]
        start = engine._now
        if nic._free_at > start:
            start = nic._free_at
        inj_end = start + inject
        nic._free_at = inj_end
        nic.busy_time += inject
        nic.jobs_served += 1
        deliver = inj_end + latency
        heappush(engine._heap, (deliver, engine._next_seq(), fn, args))
        if self._latency_sketch is not None:
            self._latency_sketch.observe(deliver - start)
        if self._observed:
            self._emit_message(
                src, dst, nbytes, start, deliver, label, src_task, dst_task
            )
        return deliver

    def _emit_message(
        self,
        src: int,
        dst: int,
        nbytes: int,
        start: float,
        deliver: float,
        label: str,
        src_task: int,
        dst_task: int,
    ) -> None:
        label = label or _edge_label(src_task, dst_task, dst)
        common = dict(
            proc=src,
            dst_proc=dst,
            task=src_task,
            dst_task=dst_task,
            nbytes=nbytes,
            label=label,
        )
        self.obs.emit(Event(MESSAGE_SENT, start, **common))
        self.obs.emit(
            Event(MESSAGE_DELIVERED, deliver, dur=deliver - start, **common)
        )

    # ------------------------------------------------------------------ #
    # Link-fault recovery (sender-side retransmission)
    # ------------------------------------------------------------------ #

    def _drop(
        self,
        src: int,
        dst: int,
        nbytes: int,
        fn: Callable[..., Any],
        args: tuple,
        label: str,
        src_task: int,
        dst_task: int,
        attempt: int,
    ) -> float:
        """A link fault lost the message; schedule a retransmission.

        The sender keeps the payload buffered until delivery (standard
        reliable-transport semantics), so recovery is a deterministic
        re-send after the policy's backoff — no upstream replay needed.
        """
        now = self.engine._now
        self.messages_dropped += 1
        if self.first_drop_time is None:
            self.first_drop_time = now
        if self._observed:
            self.obs.emit(
                Event(
                    FAULT_INJECTED,
                    now,
                    proc=src,
                    dst_proc=dst,
                    task=src_task,
                    dst_task=dst_task,
                    nbytes=nbytes,
                    category="link",
                    label=label or _edge_label(src_task, dst_task, dst),
                )
            )
        policy = self._retry
        if policy is None or not policy.allows_attempt(attempt):
            raise FaultError(
                f"message {src}->{dst} ({nbytes} bytes) dropped and "
                f"retransmission budget exhausted after {attempt} attempt(s)"
            )
        key = dst_task if dst_task >= 0 else dst
        self.engine.call_after(
            policy.delay(key, attempt),
            self._resend,
            src, dst, nbytes, fn, args, label, src_task, dst_task,
            attempt + 1,
        )
        return now

    def _resend(
        self,
        src: int,
        dst: int,
        nbytes: int,
        fn: Callable[..., Any],
        args: tuple,
        label: str,
        src_task: int,
        dst_task: int,
        attempt: int,
    ) -> None:
        self.messages_retransmitted += 1
        self.send(
            src, dst, nbytes, fn, *args,
            label=label, src_task=src_task, dst_task=dst_task,
            _attempt=attempt,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_proc(self, proc: int) -> None:
        if not 0 <= proc < self.n_procs:
            raise SimulationError(
                f"proc {proc} out of range [0, {self.n_procs})"
            )
