"""Discrete-event engine.

A minimal, deterministic event loop: events are ``(time, sequence)``
ordered, so two events at the same virtual time fire in scheduling order,
making every simulation replayable bit-for-bit.  All runtime controllers
(:mod:`repro.runtimes`) execute on top of this engine; *virtual* seconds
advance only through event timestamps, never through wall-clock time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.core.errors import SimulationError


class Event:
    """Handle to a scheduled event; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Deterministic discrete-event loop.

    Typical use::

        eng = Engine()
        eng.after(1.0, print, "one virtual second later")
        eng.run()
        assert eng.now == 1.0
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        ev = Event(max(time, self._now), next(self._seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` virtual seconds.

        Raises:
            SimulationError: for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, fn, *args)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains (or virtual ``until``).

        Returns the final virtual time.  Re-entrant calls are rejected —
        event handlers must schedule, not recurse into ``run``.
        """
        if self._running:
            raise SimulationError("Engine.run is not re-entrant")
        self._running = True
        try:
            while self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    self._now = until
                    break
                self.step()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now
