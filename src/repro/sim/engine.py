"""Discrete-event engine.

A minimal, deterministic event loop: events are ``(time, sequence)``
ordered, so two events at the same virtual time fire in scheduling order,
making every simulation replayable bit-for-bit.  All runtime controllers
(:mod:`repro.runtimes`) execute on top of this engine; *virtual* seconds
advance only through event timestamps, never through wall-clock time.

Hot path: the heap stores plain ``(time, seq, fn, args)`` tuples, so
ordering is resolved by C tuple comparison (``seq`` is unique, so the
comparison never reaches ``fn``) and the common non-cancellable schedule
allocates no handle object.  :meth:`Engine.call_at` / :meth:`Engine.call_after`
are that fast path; :meth:`Engine.at` / :meth:`Engine.after` layer the
cancellable :class:`Event` handle API on top by pushing
``(time, seq, None, handle)`` entries that the loop checks for
cancellation before firing.

Two further fast paths avoid the heap entirely while preserving the
``(time, seq)`` total order:

* Events scheduled *at the current time* (same-rank message delivery is
  the big producer) go through a FIFO of already-due entries instead of
  a ``heappush``/``heappop`` round trip — an entry appended at ``now``
  with a fresh ``seq`` is by construction ``>=`` every entry already in
  the FIFO and ``<`` nothing it could be reordered against, so the FIFO
  stays sorted for free.  :meth:`Engine.call_now` is the explicit entry
  point; :meth:`Engine.call_at` reroutes automatically.
* :meth:`Engine.replay` feeds a presorted static schedule (a compiled
  run plan's deposits, a trace) through a plain cursor, merging against
  any dynamically scheduled events by ``(time, seq)``.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Sequence

from repro.core.errors import SimulationError


class Event:
    """Handle to a cancellable scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Deterministic discrete-event loop.

    Typical use::

        eng = Engine()
        eng.after(1.0, print, "one virtual second later")
        eng.run()
        assert eng.now == 1.0
    """

    __slots__ = ("_heap", "_due", "_now", "_seq", "_next_seq", "_running")

    def __init__(self) -> None:
        # Entries: (time, seq, fn, args) — or (time, seq, None, Event)
        # for cancellable events scheduled through at()/after().
        self._heap: list[tuple] = []
        # Already-due FIFO: entries appended at the then-current time.
        # Invariant: sorted by (time, seq) — times are non-decreasing
        # (now never goes backwards) and seqs are strictly increasing.
        self._due: deque[tuple] = deque()
        self._now = 0.0
        self._seq = itertools.count()
        self._next_seq = self._seq.__next__
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap) + len(self._due)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> float:
        """Schedule ``fn(*args)`` at absolute virtual ``time`` (fast path).

        No handle is allocated, so the event cannot be cancelled; use
        :meth:`at` when cancellation is needed.  Returns the effective
        fire time (clamped to ``now``).

        Raises:
            SimulationError: when scheduling into the past.
        """
        now = self._now
        if time <= now:
            if time < now - 1e-12:
                raise SimulationError(
                    f"cannot schedule event at {time} before now={now}"
                )
            # Already due: skip the heap, append to the sorted FIFO.
            self._due.append((now, self._next_seq(), fn, args))
            return now
        heappush(self._heap, (time, self._next_seq(), fn, args))
        return time

    def call_now(self, fn: Callable[..., Any], *args: Any) -> float:
        """Schedule ``fn(*args)`` at the current virtual time (fast path).

        Equivalent to ``call_at(now, fn, *args)`` but skips the heap: an
        event created at ``now`` orders after everything already due and
        before nothing it could displace, so it lands in a plain FIFO.
        The cluster's same-rank message delivery uses this — the dominant
        event source on dense graphs.  Returns the fire time (``now``).
        """
        now = self._now
        self._due.append((now, self._next_seq(), fn, args))
        return now

    def call_after(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> float:
        """Schedule ``fn(*args)`` after ``delay`` virtual seconds (fast path).

        Raises:
            SimulationError: for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a cancellable :class:`Event` handle.

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        ev = Event(max(time, self._now), self._next_seq(), fn, args)
        heappush(self._heap, (ev.time, ev.seq, None, ev))
        return ev

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` virtual seconds.

        Returns a cancellable :class:`Event` handle.

        Raises:
            SimulationError: for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, fn, *args)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        heap = self._heap
        due = self._due
        while heap or due:
            # The due FIFO is sorted, so a (time, seq) tuple compare of
            # the two heads picks the global minimum (seq is unique).
            if due and (not heap or due[0] < heap[0]):
                time, _seq, fn, args = due.popleft()
            else:
                time, _seq, fn, args = heappop(heap)
            if fn is None:
                if args.cancelled:
                    continue
                fn, args = args.fn, args.args
            self._now = time
            fn(*args)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains (or virtual ``until``).

        Returns the final virtual time.  Re-entrant calls are rejected —
        event handlers must schedule, not recurse into ``run``.
        """
        if self._running:
            raise SimulationError("Engine.run is not re-entrant")
        self._running = True
        heap = self._heap
        due = self._due
        try:
            if until is None:
                # Hot loop: pop-and-fire with no peeking.  The due FIFO
                # (usually empty or the head) merges by tuple compare.
                while True:
                    if due:
                        if heap and heap[0] < due[0]:
                            time, _seq, fn, args = heappop(heap)
                        else:
                            time, _seq, fn, args = due.popleft()
                    elif heap:
                        time, _seq, fn, args = heappop(heap)
                    else:
                        break
                    if fn is None:
                        if args.cancelled:
                            continue
                        fn, args = args.fn, args.args
                    self._now = time
                    fn(*args)
            else:
                while heap or due:
                    if due and (not heap or due[0] < heap[0]):
                        nxt = due[0]
                    else:
                        nxt = heap[0]
                        if nxt[2] is None and nxt[3].cancelled:
                            heappop(heap)
                            continue
                    if nxt[0] > until:
                        self._now = until
                        break
                    self.step()
                else:
                    if until > self._now:
                        self._now = until
        finally:
            self._running = False
        return self._now

    def replay(self, entries: Sequence[tuple]) -> float:
        """Fire a presorted static schedule without per-event heap ops.

        ``entries`` is a sequence of ``(time, fn, args)`` tuples with
        non-decreasing times, none in the past.  This is the compiled
        fast path: the whole batch reserves a contiguous ``seq`` block up
        front (so its entries order exactly as if they had been scheduled
        one by one before anything they spawn) and is then driven by a
        plain cursor.  Events the entries schedule *dynamically* are
        merged in by ``(time, seq)`` — a dynamic event fires mid-replay
        only when it is due strictly before the next static entry.
        Dynamic events left over when the schedule is exhausted stay
        queued for a subsequent :meth:`run`.

        Returns the virtual time after the last fired entry.

        Raises:
            SimulationError: re-entrant call, unsorted times, or an entry
                scheduled into the past.
        """
        if self._running:
            raise SimulationError("Engine.replay is not re-entrant")
        n = len(entries)
        if n == 0:
            return self._now
        if entries[0][0] < self._now - 1e-12:
            raise SimulationError(
                f"replay entry at {entries[0][0]} before now={self._now}"
            )
        prev = entries[0][0]
        for e in entries:
            if e[0] < prev:
                raise SimulationError(
                    f"replay entries not time-sorted ({e[0]} after {prev})"
                )
            prev = e[0]
        # Reserve the seq block for the whole batch so dynamically
        # scheduled events (seq >= base + n) order after every static
        # entry at the same timestamp — identical to scheduling the
        # batch up front and draining through the heap.
        base = self._next_seq()
        self._seq = itertools.count(base + n)
        self._next_seq = self._seq.__next__
        heap = self._heap
        due = self._due
        self._running = True
        try:
            for i in range(n):
                time, fn, args = entries[i]
                if time < self._now:
                    time = self._now  # clamp within the 1e-12 epsilon
                seq = base + i
                # Drain dynamic events due strictly before this entry.
                while True:
                    if due and (not heap or due[0] < heap[0]):
                        nxt = due[0]
                        if (nxt[0], nxt[1]) > (time, seq):
                            break
                        due.popleft()
                        dfn, dargs = nxt[2], nxt[3]
                    elif heap:
                        nxt = heap[0]
                        if (nxt[0], nxt[1]) > (time, seq):
                            break
                        heappop(heap)
                        dfn, dargs = nxt[2], nxt[3]
                    else:
                        break
                    if dfn is None:
                        if dargs.cancelled:
                            continue
                        dfn, dargs = dargs.fn, dargs.args
                    self._now = nxt[0]
                    dfn(*dargs)
                self._now = time
                fn(*args)
        finally:
            self._running = False
        return self._now
