"""Discrete-event engine.

A minimal, deterministic event loop: events are ``(time, sequence)``
ordered, so two events at the same virtual time fire in scheduling order,
making every simulation replayable bit-for-bit.  All runtime controllers
(:mod:`repro.runtimes`) execute on top of this engine; *virtual* seconds
advance only through event timestamps, never through wall-clock time.

Hot path: the heap stores plain ``(time, seq, fn, args)`` tuples, so
ordering is resolved by C tuple comparison (``seq`` is unique, so the
comparison never reaches ``fn``) and the common non-cancellable schedule
allocates no handle object.  :meth:`Engine.call_at` / :meth:`Engine.call_after`
are that fast path; :meth:`Engine.at` / :meth:`Engine.after` layer the
cancellable :class:`Event` handle API on top by pushing
``(time, seq, None, handle)`` entries that the loop checks for
cancellation before firing.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable

from repro.core.errors import SimulationError


class Event:
    """Handle to a cancellable scheduled event."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Deterministic discrete-event loop.

    Typical use::

        eng = Engine()
        eng.after(1.0, print, "one virtual second later")
        eng.run()
        assert eng.now == 1.0
    """

    __slots__ = ("_heap", "_now", "_seq", "_next_seq", "_running")

    def __init__(self) -> None:
        # Entries: (time, seq, fn, args) — or (time, seq, None, Event)
        # for cancellable events scheduled through at()/after().
        self._heap: list[tuple] = []
        self._now = 0.0
        self._seq = itertools.count()
        self._next_seq = self._seq.__next__
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> float:
        """Schedule ``fn(*args)`` at absolute virtual ``time`` (fast path).

        No handle is allocated, so the event cannot be cancelled; use
        :meth:`at` when cancellation is needed.  Returns the effective
        fire time (clamped to ``now``).

        Raises:
            SimulationError: when scheduling into the past.
        """
        now = self._now
        if time < now:
            if time < now - 1e-12:
                raise SimulationError(
                    f"cannot schedule event at {time} before now={now}"
                )
            time = now
        heappush(self._heap, (time, self._next_seq(), fn, args))
        return time

    def call_after(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> float:
        """Schedule ``fn(*args)`` after ``delay`` virtual seconds (fast path).

        Raises:
            SimulationError: for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a cancellable :class:`Event` handle.

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        ev = Event(max(time, self._now), self._next_seq(), fn, args)
        heappush(self._heap, (ev.time, ev.seq, None, ev))
        return ev

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` virtual seconds.

        Returns a cancellable :class:`Event` handle.

        Raises:
            SimulationError: for negative delays.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, fn, *args)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            time, _seq, fn, args = heappop(heap)
            if fn is None:
                if args.cancelled:
                    continue
                fn, args = args.fn, args.args
            self._now = time
            fn(*args)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains (or virtual ``until``).

        Returns the final virtual time.  Re-entrant calls are rejected —
        event handlers must schedule, not recurse into ``run``.
        """
        if self._running:
            raise SimulationError("Engine.run is not re-entrant")
        self._running = True
        heap = self._heap
        try:
            if until is None:
                # Hot loop: pop-and-fire with no peeking.
                while heap:
                    time, _seq, fn, args = heappop(heap)
                    if fn is None:
                        if args.cancelled:
                            continue
                        fn, args = args.fn, args.args
                    self._now = time
                    fn(*args)
            else:
                while heap:
                    nxt = heap[0]
                    if nxt[2] is None and nxt[3].cancelled:
                        heappop(heap)
                        continue
                    if nxt[0] > until:
                        self._now = until
                        break
                    self.step()
                else:
                    if until > self._now:
                        self._now = until
        finally:
            self._running = False
        return self._now
