"""Discrete-event cluster simulator.

This package is the reproduction's substitute for the paper's Cray XC40:
a deterministic event engine (:mod:`~repro.sim.engine`), FIFO serving
resources (:mod:`~repro.sim.resource`), a machine/network model
(:mod:`~repro.sim.machine`, :mod:`~repro.sim.cluster`) and execution
traces (:mod:`~repro.sim.trace`).  The runtime controllers in
:mod:`repro.runtimes` execute real task callbacks while charging *virtual*
time here, which is what the scaling benchmarks measure.
"""

from repro.sim.cluster import Cluster
from repro.sim.engine import Engine, Event
from repro.sim.machine import SHAHEEN_II, MachineSpec
from repro.sim.report import category_breakdown, gantt, imbalance, utilization
from repro.sim.resource import MultiResource, Resource
from repro.sim.trace import Span, Stats, Trace

__all__ = [
    "Cluster",
    "Engine",
    "Event",
    "MachineSpec",
    "MultiResource",
    "category_breakdown",
    "gantt",
    "imbalance",
    "utilization",
    "Resource",
    "SHAHEEN_II",
    "Span",
    "Stats",
    "Trace",
]
