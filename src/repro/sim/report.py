"""Profiling reports over execution traces and event streams.

Turning a :class:`~repro.sim.trace.Trace` into the numbers a performance
engineer asks for: per-proc utilization, load imbalance, per-category
breakdowns, and an ASCII Gantt chart for eyeballing schedules — the
debugging workflow the paper supports with Dot drawings, extended to the
time axis.

The reporting layer sits on top of :mod:`repro.obs`: a saved event log
(Chrome trace or JSONL) converts back into a :class:`Trace` via
:func:`trace_from_events` or into aggregate :class:`Stats` via
:func:`stats_from_events`, so every report here works identically on
live runs and on files written by the exporters.
"""

from __future__ import annotations

import numpy as np

from repro.obs import events as _ev
from repro.obs.events import Event
from repro.sim.trace import Stats, Trace


def utilization(trace: Trace, n_procs: int, category: str = "compute") -> np.ndarray:
    """Busy fraction per proc for one span category.

    Returns a float array of length ``n_procs``; zero-length traces give
    all zeros.
    """
    busy = np.zeros(n_procs, dtype=np.float64)
    horizon = trace.makespan()
    if horizon <= 0:
        return busy
    for span in trace.spans:
        if span.category == category and 0 <= span.proc < n_procs:
            busy[span.proc] += span.duration
    return busy / horizon


def imbalance(trace: Trace, n_procs: int, category: str = "compute") -> float:
    """Load imbalance factor ``max / mean`` of per-proc busy time.

    1.0 is perfectly balanced; returns 0.0 when nothing ran.
    """
    u = utilization(trace, n_procs, category)
    mean = float(u.mean())
    if mean <= 0:
        return 0.0
    return float(u.max()) / mean


def category_breakdown(stats: Stats) -> str:
    """Render the per-category virtual-time totals as an aligned table."""
    rows = sorted(stats.category_time.items(), key=lambda kv: -kv[1])
    if not rows:
        return "(no recorded categories)"
    total = sum(v for _, v in rows)
    width = max(len(k) for k, _ in rows) + 2
    lines = [f"{'category':<{width}}{'seconds':>12}{'share':>9}"]
    for name, secs in rows:
        share = secs / total if total else 0.0
        lines.append(f"{name:<{width}}{secs:>12.6f}{share:>8.1%}")
    lines.append(f"{'total':<{width}}{total:>12.6f}{1:>8.1%}")
    return "\n".join(lines)


def trace_from_events(events: list[Event]) -> Trace:
    """Rebuild a span :class:`Trace` from a (loaded) event stream."""
    trace = Trace()
    for event in events:
        trace.emit(event)
    return trace


def stats_from_events(events: list[Event]) -> Stats:
    """Aggregate an event stream into run :class:`Stats`.

    Compute time, per-category overheads, task/message counts and bytes
    are recomputed from the events; ``network`` (send-to-delivery time,
    which the live ``Stats`` never tracked because it occupies no core)
    is included as its own category.
    """
    stats = Stats()
    for ev in events:
        if ev.type == _ev.TASK_FINISHED:
            stats.tasks_executed += 1
            stats.add("compute", ev.dur)
            stats.makespan = max(stats.makespan, ev.t)
        elif ev.type == _ev.OVERHEAD:
            stats.add(ev.category or "overhead", ev.dur)
        elif ev.type == _ev.MESSAGE_SENT:
            stats.messages += 1
            stats.bytes_sent += ev.nbytes
        elif ev.type == _ev.MESSAGE_DELIVERED:
            if ev.dur > 0.0:
                stats.add("network", ev.dur)
        elif ev.type == _ev.RUN_FINISHED:
            stats.makespan = max(stats.makespan, ev.t)
    return stats


def top_tasks(events: list[Event], k: int = 10) -> list[tuple[int, float, int]]:
    """The ``k`` longest task executions of a run.

    Returns ``(task id, compute seconds, proc)`` tuples, longest first.
    Retried tasks count each attempt separately.
    """
    rows = [
        (ev.task, ev.dur, ev.proc)
        for ev in events
        if ev.type == _ev.TASK_FINISHED
    ]
    rows.sort(key=lambda r: -r[1])
    return rows[:k]


def n_procs_of(events: list[Event]) -> int:
    """Number of procs that appear in an event stream."""
    return max((ev.proc for ev in events if ev.proc >= 0), default=-1) + 1


def gantt(
    trace: Trace,
    n_procs: int,
    width: int = 72,
    category: str = "compute",
    max_procs: int = 32,
) -> str:
    """ASCII Gantt chart: one row per proc, ``#`` where it is busy.

    Args:
        trace: the recorded spans.
        n_procs: procs to draw (rows beyond ``max_procs`` are elided).
        width: characters across the full makespan.
        category: span category to draw.
        max_procs: row cap for readability.
    """
    horizon = trace.makespan()
    if horizon <= 0:
        return "(empty trace)"
    shown = min(n_procs, max_procs)
    rows = [[" "] * width for _ in range(shown)]
    for span in trace.spans:
        if span.category != category or not 0 <= span.proc < shown:
            continue
        a = int(span.start / horizon * width)
        b = max(a + 1, int(np.ceil(span.end / horizon * width)))
        for x in range(a, min(b, width)):
            rows[span.proc][x] = "#"
    lines = [f"p{p:<4} |{''.join(row)}|" for p, row in enumerate(rows)]
    if n_procs > shown:
        lines.append(f"... ({n_procs - shown} more procs elided)")
    lines.append(f"{'':6} 0{'':{width - 10}}{horizon:.4f}s")
    return "\n".join(lines)
