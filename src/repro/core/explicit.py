"""Explicit (materialized) task graphs and JSON interchange.

Stock graphs are procedural — cheap at any size but opaque to other
tools.  :class:`ExplicitGraph` is the materialized counterpart: a task
graph defined by a plain list of :class:`~repro.core.task.Task` objects.
Use it to hand-build small dataflows, as the target of
:func:`graph_from_json`, or to snapshot a procedural graph
(:meth:`ExplicitGraph.from_graph`) for inspection, diffing, or feeding
to an external scheduler.

The JSON format is deliberately boring::

    {"tasks": [{"id": 0, "callback": 0,
                "incoming": [-1], "outgoing": [[1, -2]]}, ...]}

with the reserved ids (-1 = EXTERNAL input, -2 = TNULL sink) appearing
literally.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import CallbackId, TaskId
from repro.core.task import Task


class ExplicitGraph(TaskGraph):
    """A task graph backed by an explicit task list.

    Args:
        tasks: the logical tasks; ids must be unique (they need not be
            contiguous, though composition requires contiguity).
    """

    def __init__(self, tasks: Iterable[Task]) -> None:
        self._tasks: dict[TaskId, Task] = {}
        for t in tasks:
            if t.id in self._tasks:
                raise GraphError(f"duplicate task id {t.id}")
            self._tasks[t.id] = t
        if not self._tasks:
            raise GraphError("explicit graph needs at least one task")

    @classmethod
    def from_graph(cls, graph: TaskGraph) -> "ExplicitGraph":
        """Materialize any task graph (costs O(size))."""
        return cls(graph.task(tid) for tid in graph.task_ids())

    def size(self) -> int:
        return len(self._tasks)

    def task_ids(self) -> Iterator[TaskId]:
        return iter(sorted(self._tasks))

    def task(self, tid: TaskId) -> Task:
        try:
            return self._tasks[tid]
        except KeyError:
            raise GraphError(f"no task {tid}") from None

    def callbacks(self) -> list[CallbackId]:
        seen: dict[CallbackId, None] = {}
        for tid in self.task_ids():
            seen.setdefault(self._tasks[tid].callback, None)
        return list(seen)


def graph_to_json(graph: TaskGraph, indent: int | None = None) -> str:
    """Serialize a task graph's structure to JSON text."""
    tasks = [
        {
            "id": t.id,
            "callback": t.callback,
            "incoming": list(t.incoming),
            "outgoing": [list(ch) for ch in t.outgoing],
        }
        for t in (graph.task(tid) for tid in graph.task_ids())
    ]
    return json.dumps({"tasks": tasks}, indent=indent)


def graph_from_json(text: str) -> ExplicitGraph:
    """Reconstruct an :class:`ExplicitGraph` from :func:`graph_to_json`
    output.

    Raises:
        GraphError: on malformed documents.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid graph JSON: {exc}") from exc
    if not isinstance(doc, dict) or "tasks" not in doc:
        raise GraphError("graph JSON must be an object with a 'tasks' list")
    tasks = []
    for entry in doc["tasks"]:
        try:
            tasks.append(
                Task(
                    id=int(entry["id"]),
                    callback=int(entry["callback"]),
                    incoming=[int(x) for x in entry["incoming"]],
                    outgoing=[[int(x) for x in ch] for ch in entry["outgoing"]],
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise GraphError(f"malformed task entry {entry!r}") from exc
    return ExplicitGraph(tasks)
