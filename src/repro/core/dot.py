"""Dot (Graphviz) export for debugging task graphs.

Section III: *"we provide the ability to draw the abstract task graph (or
subsets of it) in Dot, a graph layout tool that makes debugging simple and
intuitive."*  The output is plain Dot text; no Graphviz binary is required
to generate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.ids import CallbackId, TaskId, is_real_task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.graph import TaskGraph

#: Color wheel used to distinguish callback types in the rendering.
_COLORS = [
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
]


def graph_to_dot(
    graph: "TaskGraph",
    subset: Iterable[TaskId] | None = None,
    callback_names: Mapping[CallbackId, str] | None = None,
) -> str:
    """Render ``graph`` (or the induced subgraph on ``subset``) as Dot text.

    Args:
        graph: the task graph to draw.
        subset: optional task ids to restrict to; edges to tasks outside
            the subset are drawn to dashed placeholder nodes so the local
            context stays visible (handy when drawing one rank's subgraph).
        callback_names: optional human-readable labels per callback id.

    Returns:
        The Dot source as a string.
    """
    names = dict(callback_names or {})
    ids = list(subset) if subset is not None else list(graph.task_ids())
    id_set = set(ids)
    lines = [
        "digraph taskgraph {",
        "  rankdir=TB;",
        '  node [shape=box, style=filled, fontname="Helvetica"];',
    ]
    externals: set[TaskId] = set()
    for tid in ids:
        t = graph.task(tid)
        label = names.get(t.callback, f"cb{t.callback}")
        color = _COLORS[t.callback % len(_COLORS)]
        lines.append(
            f'  t{tid} [label="{tid}\\n{label}", fillcolor="{color}"];'
        )
    for tid in ids:
        t = graph.task(tid)
        for ch, channel in enumerate(t.outgoing):
            for dst in channel:
                if not is_real_task(dst):
                    continue
                if dst in id_set:
                    lines.append(f'  t{tid} -> t{dst} [label="{ch}"];')
                else:
                    externals.add(dst)
                    lines.append(
                        f'  t{tid} -> x{dst} [label="{ch}", style=dashed];'
                    )
        for src in t.producers():
            if src not in id_set:
                externals.add(src)
                lines.append(f"  x{src} -> t{tid} [style=dashed];")
    for ext in sorted(externals):
        lines.append(
            f'  x{ext} [label="{ext}", style="dashed,filled", '
            'fillcolor="#eeeeee"];'
        )
    lines.append("}")
    return "\n".join(lines)
