"""Payloads: the unit of data exchanged between tasks.

The paper defines a ``Payload`` as "either a pointer to an in-memory object
or a binary buffer".  This module mirrors that: a :class:`Payload` wraps an
arbitrary Python object and can be flattened to bytes on demand.  The MPI
controller's *in-memory message* optimization (skip serialization for
intra-rank transfers) is modeled by controllers charging serialization cost
only for inter-rank edges; the object reference itself is always passed
directly since every simulated rank lives in one process.

Wire-size estimation matters because the network model charges
``latency + nbytes / bandwidth`` per message.  :func:`estimate_nbytes`
avoids pickling large numpy arrays just to learn their size.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

from repro.core.errors import SerializationError


# Concrete scalar types estimated at 8 bytes each: a sequence containing
# only these costs exactly 8 + 16*len (8-byte value + 8-byte per-element
# overhead) without visiting the elements.  np.bool_ is deliberately
# absent — it is not a numbers type and resolves through its ``nbytes``
# attribute instead.
_SCALAR_TYPES = frozenset(
    {int, float, bool, np.float64, np.float32, np.int64, np.int32}
)


def estimate_nbytes(obj: Any) -> int:
    """Best-effort wire size of ``obj`` in bytes.

    numpy arrays report their buffer size; bytes-likes their length;
    containers add a small per-element overhead to their contents;
    everything else falls back to the pickled length.  The estimate only
    feeds the network *cost model*, so being within a small factor is
    enough.

    Hot path: payloads are overwhelmingly flat numeric sequences, which
    are sized in O(len) type checks with no per-element dispatch.
    Nested containers are walked iteratively (the decomposition is
    additive, so traversal order does not change the total), which also
    keeps deeply nested structures from hitting the recursion limit.
    """
    total = 0
    stack = [obj]
    pop = stack.pop
    while stack:
        o = pop()
        if o is None:
            continue
        if type(o) in _SCALAR_TYPES:
            total += 8
            continue
        if isinstance(o, np.ndarray):
            total += int(o.nbytes)
        elif isinstance(o, (bytes, bytearray, memoryview)):
            total += len(o)
        elif isinstance(o, (int, float, bool, np.integer, np.floating)):
            total += 8
        elif isinstance(o, str):
            total += len(o.encode("utf-8", errors="replace"))
        elif isinstance(o, (list, tuple, set, frozenset)):
            # 8 + sum(estimate(x) + 8): the container header and the
            # per-element overhead are charged now, elements later.
            total += 8 + 8 * len(o)
            scalars = _SCALAR_TYPES
            if all(type(x) in scalars for x in o):
                total += 8 * len(o)  # homogeneous numeric fast path
            else:
                stack.extend(o)
                if len(stack) > 10_000_000:
                    # A legal (acyclic) structure never outgrows its own
                    # element count; a cycle grows without bound.
                    raise RecursionError(
                        "payload structure too large or cyclic"
                    )
        elif isinstance(o, dict):
            total += 8 + 16 * len(o)
            stack.extend(o.keys())
            stack.extend(o.values())
            if len(stack) > 10_000_000:
                raise RecursionError("payload structure too large or cyclic")
        else:
            nbytes_attr = getattr(o, "nbytes", None)
            if isinstance(nbytes_attr, (int, np.integer)):
                total += int(nbytes_attr)
            else:
                try:
                    total += len(
                        pickle.dumps(o, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                except Exception:
                    total += 64  # opaque object: charge a nominal header
    return total


class Payload:
    """A message exchanged along a dataflow edge.

    Args:
        data: the wrapped object.  ``None`` is legal and represents an
            empty message (used e.g. for pure-signal edges).
        nbytes: explicit wire size; when omitted it is estimated at
            construction time.

    Payloads compare equal when their ``data`` compare equal (numpy arrays
    are compared element-wise), which the cross-controller regression tests
    rely on.
    """

    __slots__ = ("data", "nbytes")

    def __init__(self, data: Any = None, nbytes: int | None = None) -> None:
        self.data = data
        if nbytes is None:
            nbytes = estimate_nbytes(data)
        elif nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        # Plain attributes, not properties: every simulated message reads
        # both on the hot path.
        self.nbytes = nbytes

    def serialize(self) -> bytes:
        """Flatten to a binary buffer (pickle)."""
        try:
            return pickle.dumps(self.data, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SerializationError(
                f"cannot serialize payload of type {type(self.data).__name__}"
            ) from exc

    @classmethod
    def deserialize(cls, buf: bytes) -> "Payload":
        """Reconstruct a payload from :meth:`serialize` output."""
        try:
            return cls(pickle.loads(buf), nbytes=len(buf))
        except Exception as exc:
            raise SerializationError("cannot deserialize payload") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        a, b = self.data, other.data
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return (
                isinstance(a, np.ndarray)
                and isinstance(b, np.ndarray)
                and a.shape == b.shape
                and a.dtype == b.dtype
                and bool(np.array_equal(a, b))
            )
        try:
            return bool(a == b)
        except Exception:
            # Containers holding arrays raise on truth-value evaluation;
            # fall back to comparing serialized forms.
            try:
                return self.serialize() == other.serialize()
            except Exception:
                return False

    def __hash__(self) -> int:  # payloads are mutable containers
        raise TypeError("Payload is unhashable")

    def __repr__(self) -> str:
        return f"Payload({type(self.data).__name__}, ~{self.nbytes} B)"
