"""Payloads: the unit of data exchanged between tasks.

The paper defines a ``Payload`` as "either a pointer to an in-memory object
or a binary buffer".  This module mirrors that: a :class:`Payload` wraps an
arbitrary Python object and can be flattened to bytes on demand.  The MPI
controller's *in-memory message* optimization (skip serialization for
intra-rank transfers) is modeled by controllers charging serialization cost
only for inter-rank edges; the object reference itself is always passed
directly since every simulated rank lives in one process.

Wire-size estimation matters because the network model charges
``latency + nbytes / bandwidth`` per message.  :func:`estimate_nbytes`
avoids pickling large numpy arrays just to learn their size.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

from repro.core.errors import SerializationError


def estimate_nbytes(obj: Any) -> int:
    """Best-effort wire size of ``obj`` in bytes.

    numpy arrays report their buffer size; bytes-likes their length;
    containers recurse with a small per-element overhead; everything else
    falls back to the pickled length.  The estimate only feeds the network
    *cost model*, so being within a small factor is enough.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_nbytes(x) + 8 for x in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            estimate_nbytes(k) + estimate_nbytes(v) + 16 for k, v in obj.items()
        )
    nbytes_attr = getattr(obj, "nbytes", None)
    if isinstance(nbytes_attr, (int, np.integer)):
        return int(nbytes_attr)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # opaque object: charge a nominal header


class Payload:
    """A message exchanged along a dataflow edge.

    Args:
        data: the wrapped object.  ``None`` is legal and represents an
            empty message (used e.g. for pure-signal edges).
        nbytes: explicit wire size; when omitted it is estimated lazily on
            first access and cached.

    Payloads compare equal when their ``data`` compare equal (numpy arrays
    are compared element-wise), which the cross-controller regression tests
    rely on.
    """

    __slots__ = ("_data", "_nbytes")

    def __init__(self, data: Any = None, nbytes: int | None = None) -> None:
        self._data = data
        if nbytes is not None and nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self._nbytes = nbytes

    @property
    def data(self) -> Any:
        """The wrapped object."""
        return self._data

    @property
    def nbytes(self) -> int:
        """Wire size in bytes (explicit or estimated, cached)."""
        if self._nbytes is None:
            self._nbytes = estimate_nbytes(self._data)
        return self._nbytes

    def serialize(self) -> bytes:
        """Flatten to a binary buffer (pickle)."""
        try:
            return pickle.dumps(self._data, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SerializationError(
                f"cannot serialize payload of type {type(self._data).__name__}"
            ) from exc

    @classmethod
    def deserialize(cls, buf: bytes) -> "Payload":
        """Reconstruct a payload from :meth:`serialize` output."""
        try:
            return cls(pickle.loads(buf), nbytes=len(buf))
        except Exception as exc:
            raise SerializationError("cannot deserialize payload") from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Payload):
            return NotImplemented
        a, b = self._data, other._data
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return (
                isinstance(a, np.ndarray)
                and isinstance(b, np.ndarray)
                and a.shape == b.shape
                and a.dtype == b.dtype
                and bool(np.array_equal(a, b))
            )
        try:
            return bool(a == b)
        except Exception:
            # Containers holding arrays raise on truth-value evaluation;
            # fall back to comparing serialized forms.
            try:
                return self.serialize() == other.serialize()
            except Exception:
                return False

    def __hash__(self) -> int:  # payloads are mutable containers
        raise TypeError("Payload is unhashable")

    def __repr__(self) -> str:
        return f"Payload({type(self._data).__name__}, ~{self.nbytes} B)"
