"""Core of the BabelFlow EDSL: tasks, graphs, maps, payloads, callbacks.

This package is the paper's primary contribution: a runtime-agnostic task
graph abstraction.  See :mod:`repro.graphs` for stock graph shapes and
:mod:`repro.runtimes` for the controllers that execute them.
"""

from repro.core.callbacks import CallbackRegistry, TaskCallback
from repro.core.composition import ComposedGraph
from repro.core.dot import graph_to_dot
from repro.core.errors import (
    BabelFlowError,
    CallbackError,
    ControllerError,
    GraphError,
    SerializationError,
    SimulationError,
    TaskMapError,
)
from repro.core.explicit import ExplicitGraph, graph_from_json, graph_to_json
from repro.core.graph import TaskGraph
from repro.core.ids import (
    EXTERNAL,
    TNULL,
    CallbackId,
    IdSegments,
    ShardId,
    TaskId,
    is_real_task,
)
from repro.core.payload import Payload, estimate_nbytes
from repro.core.task import Task
from repro.core.taskmap import (
    BlockMap,
    FuncMap,
    ModuloMap,
    RangeMap,
    TaskMap,
    validate_taskmap,
)

__all__ = [
    "BabelFlowError",
    "BlockMap",
    "CallbackError",
    "CallbackId",
    "CallbackRegistry",
    "ComposedGraph",
    "ControllerError",
    "EXTERNAL",
    "ExplicitGraph",
    "FuncMap",
    "GraphError",
    "IdSegments",
    "ModuloMap",
    "Payload",
    "RangeMap",
    "SerializationError",
    "ShardId",
    "SimulationError",
    "Task",
    "TaskCallback",
    "TaskGraph",
    "TaskId",
    "TaskMap",
    "TaskMapError",
    "TNULL",
    "estimate_nbytes",
    "graph_from_json",
    "graph_to_dot",
    "graph_to_json",
    "is_real_task",
    "validate_taskmap",
]
