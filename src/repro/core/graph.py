"""The ``TaskGraph`` base class.

Section III: *"The basic TaskGraph interface requires the user to implement
only two functions: 1) compute the total number of tasks, and 2) return a
logical task corresponding to a task id."*  Everything else —
``callbacks()``, ``local_graph()``, validation, round decomposition for
index launches, Dot export — is provided generically here, exactly as the
paper provides ``localGraph`` and ``callbacks`` in its base class.

Task graphs are *procedural*: a graph object stores only its parameters and
materializes :class:`~repro.core.task.Task` objects on demand, so a graph
with millions of tasks costs nothing until a controller queries the small
subgraph it owns ("fully instantiating a graph on every core ... is not
scalable.  Instead, we typically rely on procedural descriptions").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL, CallbackId, ShardId, TaskId, is_real_task
from repro.core.task import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.taskmap import TaskMap


def _rounds_from(tasks: Iterable[Task]) -> list[list[TaskId]]:
    """Partition already-materialized ``tasks`` into dependency rounds.

    Shared by :meth:`TaskGraph.rounds` and :meth:`TaskGraph.validate`, so
    validation does not re-materialize the whole graph a second time just
    for the cycle check.
    """
    indeg: dict[TaskId, int] = {}
    consumers: dict[TaskId, list[TaskId]] = {}
    for t in tasks:
        indeg[t.id] = sum(1 for src in t.incoming if is_real_task(src))
        # Count every message (edge multiplicity matters: a consumer
        # expecting two messages from one producer has in-degree 2).
        for channel in t.outgoing:
            for dst in channel:
                if is_real_task(dst):
                    consumers.setdefault(t.id, []).append(dst)
    level: dict[TaskId, int] = {}
    queue = deque(sorted(tid for tid, d in indeg.items() if d == 0))
    for tid in queue:
        level[tid] = 0
    processed = 0
    while queue:
        tid = queue.popleft()
        processed += 1
        for dst in consumers.get(tid, []):
            indeg[dst] -= 1
            level[dst] = max(level.get(dst, 0), level[tid] + 1)
            if indeg[dst] == 0:
                queue.append(dst)
    if processed != len(indeg):
        raise GraphError(
            f"graph has a dependency cycle: {len(indeg) - processed} "
            f"task(s) never became ready"
        )
    n_rounds = 1 + max(level.values(), default=-1)
    out: list[list[TaskId]] = [[] for _ in range(n_rounds)]
    for tid in sorted(level):
        out[level[tid]].append(tid)
    return out


class TaskGraph(ABC):
    """Abstract procedural description of a dataflow.

    Subclasses implement :meth:`size` and :meth:`task`; graphs whose id
    space is non-contiguous additionally override :meth:`task_ids`.
    """

    # ------------------------------------------------------------------ #
    # Required interface
    # ------------------------------------------------------------------ #

    @abstractmethod
    def size(self) -> int:
        """Total number of tasks in the graph."""

    @abstractmethod
    def task(self, tid: TaskId) -> Task:
        """Materialize the logical task with id ``tid``.

        Raises:
            GraphError: if ``tid`` is not a task of this graph.
        """

    # ------------------------------------------------------------------ #
    # Generic interface with default implementations
    # ------------------------------------------------------------------ #

    def task_ids(self) -> Iterator[TaskId]:
        """Iterate over all valid task ids.

        The default assumes the contiguous id space ``range(size())``;
        composed graphs override this.
        """
        return iter(range(self.size()))

    def callbacks(self) -> list[CallbackId]:
        """The callback ids (task types) used by this graph.

        The default scans every task; concrete graphs override this with
        their known, ordered list (the paper's ``callback_ids`` member) so
        the scan is avoided.
        """
        seen: dict[CallbackId, None] = {}
        for tid in self.task_ids():
            seen.setdefault(self.task(tid).callback, None)
        return list(seen)

    def local_graph(self, task_map: "TaskMap", shard: ShardId) -> list[Task]:
        """All tasks assigned to ``shard`` by ``task_map``.

        Mirrors the paper's ``Reduction::localGraph``: query the map for
        the shard's task ids and materialize each one.
        """
        return [self.task(tid) for tid in task_map.get_ids(shard)]

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def tasks(self) -> Iterator[Task]:
        """Materialize every task (test/debug helper; avoid at scale)."""
        for tid in self.task_ids():
            yield self.task(tid)

    def boundary_ids(self) -> tuple[list[TaskId], list[TaskId]]:
        """``(source_ids, sink_ids)`` computed in a single graph scan.

        Prefer this over calling :meth:`source_ids` and :meth:`sink_ids`
        separately when both are needed — each of those is a full scan.
        """
        sources: list[TaskId] = []
        sinks: list[TaskId] = []
        for t in self.tasks():
            if t.external_inputs():
                sources.append(t.id)
            if t.is_sink():
                sinks.append(t.id)
        return sources, sinks

    def source_ids(self) -> list[TaskId]:
        """Ids of tasks with at least one host-provided (EXTERNAL) input."""
        return self.boundary_ids()[0]

    def sink_ids(self) -> list[TaskId]:
        """Ids of tasks that return at least one channel to the caller."""
        return self.boundary_ids()[1]

    def rounds(self) -> list[list[TaskId]]:
        """Partition the tasks into *rounds of noninterfering tasks*.

        Round ``r`` contains every task whose longest dependency chain from
        a source has length ``r``; no task depends on another task of its
        own round.  This is exactly the grouping the Legion index-launch
        controller needs (Section IV-C: "the current implementation crawls
        the graph to group the tasks into rounds of noninterfering
        tasks").

        Raises:
            GraphError: if the graph contains a dependency cycle.
        """
        return _rounds_from(self.tasks())

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check structural well-formedness.

        Verifies that: ids are unique and consistent; every edge is
        symmetric (``u`` lists ``v`` as consumer exactly as often as ``v``
        lists ``u`` as producer); every input slot has a producer
        (EXTERNAL counts); the graph is acyclic; and every referenced id is
        a task of the graph.

        Raises:
            GraphError: describing the first violation found.
        """
        ids = list(self.task_ids())
        id_set = set(ids)
        if len(ids) != len(id_set):
            raise GraphError("duplicate task ids in task_ids()")
        if len(ids) != self.size():
            raise GraphError(
                f"task_ids() yields {len(ids)} ids but size() is {self.size()}"
            )
        tasks = {tid: self.task(tid) for tid in ids}
        for tid, t in tasks.items():
            if t.id != tid:
                raise GraphError(f"task({tid}) returned task with id {t.id}")
            for slot, src in enumerate(t.incoming):
                if src == TNULL:
                    raise GraphError(
                        f"task {tid} input slot {slot} references TNULL"
                    )
                if is_real_task(src) and src not in id_set:
                    raise GraphError(
                        f"task {tid} input slot {slot} references unknown "
                        f"task {src}"
                    )
            for ch, channel in enumerate(t.outgoing):
                for dst in channel:
                    if dst == EXTERNAL:
                        raise GraphError(
                            f"task {tid} output channel {ch} targets EXTERNAL"
                        )
                    if is_real_task(dst) and dst not in id_set:
                        raise GraphError(
                            f"task {tid} output channel {ch} targets unknown "
                            f"task {dst}"
                        )
        # Edge symmetry: count producer->consumer multiplicity both ways.
        for tid, t in tasks.items():
            for dst in set(t.consumers()):
                sent = sum(ch.count(dst) for ch in t.outgoing)
                expected = tasks[dst].incoming.count(tid)
                if sent != expected:
                    raise GraphError(
                        f"edge {tid}->{dst} asymmetric: {tid} sends {sent} "
                        f"message(s) but {dst} expects {expected}"
                    )
        for tid, t in tasks.items():
            for src in set(t.producers()):
                expected = t.incoming.count(src)
                sent = sum(ch.count(tid) for ch in tasks[src].outgoing)
                if sent != expected:
                    raise GraphError(
                        f"edge {src}->{tid} asymmetric: {tid} expects "
                        f"{expected} message(s) but {src} sends {sent}"
                    )
        _rounds_from(tasks.values())  # raises on cycles; reuses the scan

    # ------------------------------------------------------------------ #
    # Interop / debugging
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (nodes carry ``callback``)."""
        import networkx as nx

        g = nx.DiGraph()
        for t in self.tasks():
            g.add_node(t.id, callback=t.callback)
        for t in self.tasks():
            for ch, channel in enumerate(t.outgoing):
                for dst in channel:
                    if is_real_task(dst):
                        g.add_edge(t.id, dst, channel=ch)
        return g

    def to_dot(self, subset: Iterable[TaskId] | None = None) -> str:
        """Render the graph (or a subset of its tasks) in Dot format.

        See :func:`repro.core.dot.graph_to_dot`; provided here so
        ``graph.to_dot()`` works as in the paper's debugging workflow.
        """
        from repro.core.dot import graph_to_dot

        return graph_to_dot(self, subset=subset)

    # ------------------------------------------------------------------ #
    # Caching
    # ------------------------------------------------------------------ #

    def cached(self, maxsize: int | None = None) -> "TaskGraph":
        """A view of this graph that memoizes :meth:`task` materializations.

        Procedural graphs rebuild a :class:`~repro.core.task.Task` on
        every ``task(tid)`` call; the controllers query each task several
        times per run (input deposit, output routing, placement), so they
        execute against a cached view.  **Caching contract:** the graph
        must be a pure function of ``tid`` — ``task(tid)`` always returns
        an equivalent task, and the structure does not change while a
        cached view is alive.  All shipped graphs satisfy this; graphs
        mutated in place must not be wrapped.

        Args:
            maxsize: LRU capacity; ``None`` (default) caches without
                bound — the right choice for a single run, where every
                task materializes exactly once anyway.
        """
        return CachedGraph(self, maxsize)

    def __len__(self) -> int:
        return self.size()


class CachedGraph(TaskGraph):
    """Memoizing view of another graph (see :meth:`TaskGraph.cached`).

    ``task`` is backed by :func:`functools.lru_cache`; the full-graph
    structure queries (``rounds``, ``boundary_ids``, ``callbacks``,
    ``size``) are computed once and reused, de-duplicating the repeated
    scans controllers and validators would otherwise pay.  Unknown
    attributes delegate to the wrapped graph, so graph-specific helpers
    (``leaf_ids()``, ``describe()``, ...) keep working on the view.
    """

    def __init__(self, base: TaskGraph, maxsize: int | None = None) -> None:
        while isinstance(base, CachedGraph):  # never stack caches
            base = base._base
        self._base = base
        # Instance attribute shadows the class method: lookups go
        # straight to the C-implemented lru_cache wrapper.
        self.task = lru_cache(maxsize=maxsize)(base.task)
        self._size: int | None = None
        self._callbacks: list[CallbackId] | None = None
        self._rounds: list[list[TaskId]] | None = None
        self._boundary: tuple[list[TaskId], list[TaskId]] | None = None

    def size(self) -> int:
        if self._size is None:
            self._size = self._base.size()
        return self._size

    def task(self, tid: TaskId) -> Task:  # shadowed by the instance attr
        return self._base.task(tid)  # pragma: no cover

    def task_ids(self) -> Iterator[TaskId]:
        return self._base.task_ids()

    def callbacks(self) -> list[CallbackId]:
        if self._callbacks is None:
            self._callbacks = self._base.callbacks()
        return list(self._callbacks)

    def rounds(self) -> list[list[TaskId]]:
        if self._rounds is None:
            self._rounds = super().rounds()
        return self._rounds

    def boundary_ids(self) -> tuple[list[TaskId], list[TaskId]]:
        if self._boundary is None:
            self._boundary = super().boundary_ids()
        return self._boundary

    def cached(self, maxsize: int | None = None) -> "TaskGraph":
        """Already cached; returns itself (unbounded) or a resized view."""
        if maxsize is None:
            return self
        return CachedGraph(self._base, maxsize)

    def __getattr__(self, name: str):
        # Only called when normal lookup fails: delegate graph-specific
        # attributes (callback-id constants, id helpers, ...).
        return getattr(self._base, name)
