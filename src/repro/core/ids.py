"""Identifier spaces of the EDSL.

The paper identifies every logical task with a globally unique integer
``TaskId`` and every task *type* with a ``CallbackId``.  Two special task
ids are reserved (Section III: "Special task ids are reserved for external
inputs"):

* :data:`EXTERNAL` marks an incoming edge fed by the host application
  (simulation data, disk, ...) rather than by another task.
* :data:`TNULL` marks an outgoing edge whose payload is returned to the
  caller instead of being sent to another task (a graph "sink").

Both are negative so they can never collide with real task ids, which are
non-negative.

The paper also recommends giving different phases of an algorithm distinct
id *prefixes* so ids remain unique when graphs are composed.
:class:`IdSegments` implements that scheme: it hands out disjoint
contiguous id ranges, one per named phase, and converts between global ids
and ``(phase, local index)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import GraphError

TaskId = int
CallbackId = int
ShardId = int

#: Pseudo task id for inputs provided by the host application.
EXTERNAL: TaskId = -1

#: Pseudo task id for outputs returned to the caller (graph sinks).
TNULL: TaskId = -2


def is_real_task(tid: TaskId) -> bool:
    """True when ``tid`` names an actual task (not EXTERNAL / TNULL)."""
    return tid >= 0


@dataclass(frozen=True)
class _Segment:
    name: str
    base: int
    count: int


@dataclass
class IdSegments:
    """Allocator of disjoint contiguous id ranges for graph phases.

    Example::

        seg = IdSegments()
        seg.add("local", n)
        seg.add("join", n_joins)
        gid = seg.to_global("join", 3)       # global id of join #3
        phase, idx = seg.to_local(gid)       # -> ("join", 3)

    Ranges are allocated back to back starting at zero, so the total id
    space is exactly ``seg.total`` and can be enumerated with
    ``range(seg.total)``.
    """

    _segments: list[_Segment] = field(default_factory=list)
    _by_name: dict[str, _Segment] = field(default_factory=dict)

    def add(self, name: str, count: int) -> "IdSegments":
        """Append a phase with ``count`` ids; returns self for chaining."""
        if count < 0:
            raise GraphError(f"segment {name!r} has negative count {count}")
        if name in self._by_name:
            raise GraphError(f"duplicate segment name {name!r}")
        seg = _Segment(name, self.total, count)
        self._segments.append(seg)
        self._by_name[name] = seg
        return self

    @property
    def total(self) -> int:
        """Total number of ids across all phases."""
        if not self._segments:
            return 0
        last = self._segments[-1]
        return last.base + last.count

    def count(self, name: str) -> int:
        """Number of ids in phase ``name``."""
        return self._segment(name).count

    def base(self, name: str) -> int:
        """First global id of phase ``name``."""
        return self._segment(name).base

    def to_global(self, name: str, index: int) -> TaskId:
        """Convert ``(phase, local index)`` to a global task id."""
        seg = self._segment(name)
        if not 0 <= index < seg.count:
            raise GraphError(
                f"index {index} out of range for segment {name!r} "
                f"(count {seg.count})"
            )
        return seg.base + index

    def to_local(self, tid: TaskId) -> tuple[str, int]:
        """Convert a global task id to its ``(phase, local index)`` pair."""
        if not 0 <= tid < self.total:
            raise GraphError(f"task id {tid} outside id space [0, {self.total})")
        # Linear scan is fine: graphs have a handful of phases.
        for seg in self._segments:
            if seg.base <= tid < seg.base + seg.count:
                return seg.name, tid - seg.base
        raise GraphError(f"task id {tid} not in any segment")  # pragma: no cover

    def phase(self, tid: TaskId) -> str:
        """Name of the phase that owns global id ``tid``."""
        return self.to_local(tid)[0]

    def names(self) -> list[str]:
        """Phase names in allocation order."""
        return [s.name for s in self._segments]

    def _segment(self, name: str) -> _Segment:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"unknown segment {name!r}") from None
