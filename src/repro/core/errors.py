"""Exception hierarchy for the BabelFlow reproduction.

Every error raised by the library derives from :class:`BabelFlowError` so
host applications can catch library failures with a single handler.
"""

from __future__ import annotations


class BabelFlowError(Exception):
    """Base class of all library errors."""


class GraphError(BabelFlowError):
    """A task graph is malformed (bad parameters, unknown task id,
    inconsistent edges, cycles, ...)."""


class TaskMapError(BabelFlowError):
    """A task map does not form a valid partition of the task ids, or a
    shard/task id is out of range."""


class CallbackError(BabelFlowError):
    """A callback id is unknown, unregistered, or a callback produced an
    output that does not match the task's outgoing channels."""


class ControllerError(BabelFlowError):
    """A runtime controller was misused (run before initialize, missing
    initial inputs, ...) or failed during execution."""


class SerializationError(BabelFlowError):
    """A payload could not be serialized or deserialized."""


class SimulationError(BabelFlowError):
    """The discrete-event substrate was misused or reached an inconsistent
    state (e.g., deadlock: no runnable events but tasks remain)."""


class FaultError(BabelFlowError):
    """A fault plan is invalid (e.g. it kills every rank) or a run became
    unrecoverable (a task exhausted its retry budget, a message could not
    be delivered within the retransmission budget)."""
