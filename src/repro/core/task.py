"""The logical task: the atom of the EDSL.

Section III of the paper: *"At the core of the EDSL lies the task graph
defined as a set of logical tasks, each of which stores: a globally unique
task id, task ids of tasks that will provide inputs and receive outputs and
a task type identifying which callback to use."*

A :class:`Task` is purely *logical*: it has no storage for data.  Runtime
controllers turn logical tasks into *physical* tasks by allocating input
slots and scheduling execution (see :mod:`repro.runtimes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import GraphError
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId, is_real_task


@dataclass
class Task:
    """One logical task.

    Attributes:
        id: globally unique, non-negative task id.
        callback: the task type; selects which registered callback runs.
        incoming: one entry per input slot — the id of the producing task,
            or :data:`~repro.core.ids.EXTERNAL` when the host application
            provides this input directly.
        outgoing: one list per *output channel*.  ``outgoing[c]`` lists the
            consumer task ids of channel ``c``; the special consumer
            :data:`~repro.core.ids.TNULL` returns the channel's payload to
            the caller.  An empty consumer list is equivalent to
            ``[TNULL]`` handled by the controllers as "discard".
    """

    id: TaskId
    callback: CallbackId
    incoming: list[TaskId] = field(default_factory=list)
    outgoing: list[list[TaskId]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise GraphError(f"task id must be non-negative, got {self.id}")
        if self.callback < 0:
            raise GraphError(
                f"callback id must be non-negative, got {self.callback}"
            )

    @property
    def n_inputs(self) -> int:
        """Number of input slots this task waits for."""
        return len(self.incoming)

    @property
    def n_outputs(self) -> int:
        """Number of output channels this task produces."""
        return len(self.outgoing)

    def external_inputs(self) -> list[int]:
        """Indices of input slots fed by the host application."""
        return [i for i, src in enumerate(self.incoming) if src == EXTERNAL]

    def producers(self) -> list[TaskId]:
        """Distinct real task ids feeding this task, in slot order."""
        seen: list[TaskId] = []
        for src in self.incoming:
            if is_real_task(src) and src not in seen:
                seen.append(src)
        return seen

    def consumers(self) -> list[TaskId]:
        """Distinct real task ids consuming any output channel."""
        seen: list[TaskId] = []
        for channel in self.outgoing:
            for dst in channel:
                if is_real_task(dst) and dst not in seen:
                    seen.append(dst)
        return seen

    def is_sink(self) -> bool:
        """True when some output channel is returned to the caller."""
        return any(
            (not channel) or (TNULL in channel) for channel in self.outgoing
        )

    def input_slots_from(self, producer: TaskId) -> list[int]:
        """Input-slot indices that expect data from ``producer``."""
        return [i for i, src in enumerate(self.incoming) if src == producer]
