"""Callback registry: linking task types to implementations.

The paper's task implementations all share one generic signature::

    int task(vector<Payload>& inputs, vector<Payload>& outputs, TaskId id);

The Python equivalent used throughout this reproduction is::

    def task(inputs: list[Payload], task_id: TaskId) -> list[Payload]

where the returned list has exactly one payload per *output channel* of the
task (``Task.outgoing``).  Controllers validate the arity so a mismatch is
caught at the offending task instead of surfacing as a hang downstream.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.core.errors import CallbackError
from repro.core.ids import CallbackId, TaskId
from repro.core.payload import Payload

#: The callback signature: inputs and the task id in, one payload per
#: output channel out.
TaskCallback = Callable[[list[Payload], TaskId], list[Payload]]


class SupportsCallbacks(Protocol):
    """Anything that advertises its supported callback ids (task graphs)."""

    def callbacks(self) -> list[CallbackId]: ...


def validate_outputs(
    cid: CallbackId,
    outputs: list[Payload] | None,
    task_id: TaskId,
    n_outputs: int,
) -> list[Payload]:
    """Check a callback's return value against the task's output arity.

    Shared by :meth:`CallbackRegistry.invoke` and the local pool backend's
    worker-side execution (where no registry object exists — the callback
    travels to the worker alone), so both report identical errors.

    Raises:
        CallbackError: when the callback returned anything other than a
            list of ``n_outputs`` payloads.
    """
    if outputs is None and n_outputs == 0:
        return []
    if not isinstance(outputs, list) or len(outputs) != n_outputs:
        got = (
            "None"
            if outputs is None
            else f"{type(outputs).__name__} of length "
            f"{len(outputs) if hasattr(outputs, '__len__') else '?'}"
        )
        raise CallbackError(
            f"task {task_id} (callback {cid}) must return a list of "
            f"{n_outputs} payloads, got {got}"
        )
    for i, out in enumerate(outputs):
        if not isinstance(out, Payload):
            raise CallbackError(
                f"task {task_id} (callback {cid}) output channel {i} is "
                f"a {type(out).__name__}, expected Payload"
            )
    return outputs


class CallbackRegistry:
    """Maps callback ids to implementations.

    Controllers own one registry each (populated through
    ``Controller.register_callback``), so the same graph can run with
    different implementations side by side — e.g. a volume-render leaf in
    one controller and a statistics leaf in another, as Section III
    describes.
    """

    def __init__(self, valid_ids: Iterable[CallbackId] | None = None) -> None:
        self._valid: set[CallbackId] | None = (
            set(valid_ids) if valid_ids is not None else None
        )
        self._callbacks: dict[CallbackId, TaskCallback] = {}

    def register(self, cid: CallbackId, fn: TaskCallback) -> None:
        """Bind ``fn`` to callback id ``cid``.

        Re-registering an id replaces the previous binding (useful when
        reassembling an algorithm with different leaf implementations).

        Raises:
            CallbackError: if the graph declared its callback ids and
                ``cid`` is not among them.
        """
        if self._valid is not None and cid not in self._valid:
            raise CallbackError(
                f"callback id {cid} is not declared by the task graph "
                f"(declared: {sorted(self._valid)})"
            )
        if not callable(fn):
            raise CallbackError(f"callback for id {cid} is not callable")
        self._callbacks[cid] = fn

    def resolve(self, cid: CallbackId) -> TaskCallback:
        """Return the implementation bound to ``cid``.

        Raises:
            CallbackError: if nothing is registered for ``cid``.
        """
        try:
            return self._callbacks[cid]
        except KeyError:
            raise CallbackError(
                f"no callback registered for id {cid}; "
                f"registered ids: {sorted(self._callbacks)}"
            ) from None

    def missing(self, required: Iterable[CallbackId]) -> list[CallbackId]:
        """Callback ids from ``required`` that have no implementation yet."""
        return sorted(set(required) - set(self._callbacks))

    def invoke(
        self,
        cid: CallbackId,
        inputs: list[Payload],
        task_id: TaskId,
        n_outputs: int,
    ) -> list[Payload]:
        """Run callback ``cid`` and validate its output arity.

        Raises:
            CallbackError: when the callback returns anything other than a
                list of ``n_outputs`` payloads.
        """
        fn = self.resolve(cid)
        return validate_outputs(cid, fn(inputs, task_id), task_id, n_outputs)
