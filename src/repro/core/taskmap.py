"""Task maps: assigning logical tasks to shards/ranks.

The MPI controller and the Legion SPMD controller need an explicit mapping
from task ids to the rank/shard executing them (Section III / Listing 3).
A :class:`TaskMap` answers two queries: ``shard(task_id)`` and
``get_ids(shard_id)``; the two must stay mutually consistent, which
:func:`validate_taskmap` checks and the property tests exercise.

Provided maps:

* :class:`ModuloMap` — the paper's round-robin ``task_id % shards``.
* :class:`BlockMap` — contiguous near-equal chunks of the id space.
* :class:`RangeMap` — explicit user-provided assignment.
* :class:`FuncMap` — wraps any ``task_id -> shard`` function.

Not every shard must receive tasks, and shards may receive many tasks
("distributing tasks among fewer ranks provides a direct trade-off between
distributed and shared memory parallelism").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.errors import TaskMapError
from repro.core.ids import ShardId, TaskId
from repro.util.partition import split_range


class TaskMap(ABC):
    """Abstract assignment of ``task_count`` tasks to ``shard_count`` shards."""

    def __init__(self, shard_count: int, task_count: int) -> None:
        if shard_count <= 0:
            raise TaskMapError(f"shard_count must be positive, got {shard_count}")
        if task_count < 0:
            raise TaskMapError(f"task_count must be non-negative, got {task_count}")
        self._shard_count = shard_count
        self._task_count = task_count

    @property
    def shard_count(self) -> int:
        """Number of shards (ranks) tasks may be assigned to."""
        return self._shard_count

    @property
    def task_count(self) -> int:
        """Number of tasks being assigned (ids ``0 .. task_count-1``)."""
        return self._task_count

    @abstractmethod
    def shard(self, tid: TaskId) -> ShardId:
        """Shard owning task ``tid``."""

    def get_ids(self, shard: ShardId) -> list[TaskId]:
        """All task ids assigned to ``shard``, ascending.

        Default implementation scans the id space; maps with closed-form
        inverses override it.
        """
        self._check_shard(shard)
        return [t for t in range(self._task_count) if self.shard(t) == shard]

    def _check_shard(self, shard: ShardId) -> None:
        if not 0 <= shard < self._shard_count:
            raise TaskMapError(
                f"shard {shard} out of range [0, {self._shard_count})"
            )

    def _check_task(self, tid: TaskId) -> None:
        if not 0 <= tid < self._task_count:
            raise TaskMapError(
                f"task id {tid} out of range [0, {self._task_count})"
            )


class ModuloMap(TaskMap):
    """Round-robin assignment: ``shard(t) = t % shard_count`` (Listing 3)."""

    def shard(self, tid: TaskId) -> ShardId:
        self._check_task(tid)
        return tid % self._shard_count

    def get_ids(self, shard: ShardId) -> list[TaskId]:
        self._check_shard(shard)
        return list(range(shard, self._task_count, self._shard_count))


class BlockMap(TaskMap):
    """Contiguous assignment: shard ``s`` owns one near-equal chunk of ids.

    Keeps tree neighborhoods co-located, trading load balance for locality
    — useful with graphs whose id space is laid out breadth-first.
    """

    def shard(self, tid: TaskId) -> ShardId:
        self._check_task(tid)
        if self._task_count == 0:
            raise TaskMapError("empty map has no tasks")
        base, extra = divmod(self._task_count, self._shard_count)
        # Invert split_range: the first `extra` chunks have size base+1.
        pivot = extra * (base + 1)
        if tid < pivot:
            return tid // (base + 1)
        if base == 0:
            raise TaskMapError(f"task id {tid} beyond populated shards")
        return extra + (tid - pivot) // base

    def get_ids(self, shard: ShardId) -> list[TaskId]:
        self._check_shard(shard)
        lo, hi = split_range(self._task_count, self._shard_count, shard)
        return list(range(lo, hi))


class RangeMap(TaskMap):
    """Explicit assignment from a ``task_id -> shard`` table.

    Args:
        assignment: sequence or mapping with one shard per task id.
    """

    def __init__(
        self,
        shard_count: int,
        assignment: Sequence[ShardId] | Mapping[TaskId, ShardId],
    ) -> None:
        if isinstance(assignment, Mapping):
            task_count = len(assignment)
            table = [assignment.get(t) for t in range(task_count)]
            if any(s is None for s in table):
                raise TaskMapError(
                    "mapping assignment must cover ids 0..len-1 contiguously"
                )
        else:
            table = list(assignment)
            task_count = len(table)
        super().__init__(shard_count, task_count)
        for tid, s in enumerate(table):
            if not 0 <= s < shard_count:
                raise TaskMapError(
                    f"task {tid} assigned to invalid shard {s} "
                    f"(shard_count {shard_count})"
                )
        self._table: list[ShardId] = table  # type: ignore[assignment]
        self._inverse: dict[ShardId, list[TaskId]] = {}
        for tid, s in enumerate(self._table):
            self._inverse.setdefault(s, []).append(tid)

    def shard(self, tid: TaskId) -> ShardId:
        self._check_task(tid)
        return self._table[tid]

    def get_ids(self, shard: ShardId) -> list[TaskId]:
        self._check_shard(shard)
        return list(self._inverse.get(shard, []))


class FuncMap(TaskMap):
    """Wrap an arbitrary ``task_id -> shard`` function as a task map."""

    def __init__(
        self,
        shard_count: int,
        task_count: int,
        fn: Callable[[TaskId], ShardId],
    ) -> None:
        super().__init__(shard_count, task_count)
        self._fn = fn

    def shard(self, tid: TaskId) -> ShardId:
        self._check_task(tid)
        s = self._fn(tid)
        if not 0 <= s < self._shard_count:
            raise TaskMapError(
                f"map function sent task {tid} to invalid shard {s}"
            )
        return s


def validate_taskmap(tmap: TaskMap, task_ids: Iterable[TaskId] | None = None) -> None:
    """Check that ``get_ids`` partitions the id space consistently with
    ``shard``.

    Args:
        tmap: the map under test.
        task_ids: the graph's actual id space; defaults to
            ``range(tmap.task_count)``.

    Raises:
        TaskMapError: if a task is owned by zero or multiple shards, or the
            two query directions disagree.
    """
    expected = set(task_ids) if task_ids is not None else set(range(tmap.task_count))
    seen: dict[TaskId, ShardId] = {}
    for s in range(tmap.shard_count):
        for tid in tmap.get_ids(s):
            if tid in seen:
                raise TaskMapError(
                    f"task {tid} assigned to both shard {seen[tid]} and {s}"
                )
            seen[tid] = s
    if set(seen) != expected:
        missing = sorted(expected - set(seen))[:5]
        extra = sorted(set(seen) - expected)[:5]
        raise TaskMapError(
            f"get_ids does not cover the id space (missing {missing}..., "
            f"extra {extra}...)"
        )
    for tid, s in seen.items():
        if tmap.shard(tid) != s:
            raise TaskMapError(
                f"shard({tid}) = {tmap.shard(tid)} but get_ids placed it on {s}"
            )
