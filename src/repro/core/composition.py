"""Composition of task graphs via id-prefix namespaces.

Section III: *"different portions of the graph, such as the embedded
reduction or the various broadcast patterns, can be assigned unique
prefixes and then can use the traditional modulo type operations to assign
postfix Ids."*

:class:`ComposedGraph` realizes that scheme generically: each component
graph receives a disjoint contiguous block of the global task-id space and
a disjoint block of the callback-id space, and cross-component edges are
declared by *linking* a component's sink channel to another component's
external input slot.  The result is itself a :class:`TaskGraph`, so
compositions nest and run on any controller unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import GraphError
from repro.core.graph import TaskGraph
from repro.core.ids import EXTERNAL, TNULL, CallbackId, TaskId
from repro.core.task import Task


@dataclass(frozen=True)
class _Part:
    name: str
    graph: TaskGraph
    id_base: int
    cb_base: int


@dataclass(frozen=True)
class _Link:
    src_gid: TaskId
    src_channel: int
    dst_gid: TaskId
    dst_slot: int


class ComposedGraph(TaskGraph):
    """A task graph assembled from named component graphs.

    Usage::

        comp = ComposedGraph()
        comp.add("reduce", Reduction(leaves=64, valence=4))
        comp.add("bcast", Broadcast(leaves=64, valence=4))
        # feed the reduction's root output into the broadcast's root input
        comp.link("reduce", root_id, 0, "bcast", bcast_root_id, 0)

    Component task ids are offset by the component's base; use
    :meth:`global_id` / :meth:`local_id` to convert, and
    :meth:`callback_id` to obtain the global callback id to register
    implementations under.
    """

    def __init__(self) -> None:
        self._parts: list[_Part] = []
        self._by_name: dict[str, _Part] = {}
        self._links: list[_Link] = []
        # Lazily built link indexes keyed by global task id.
        self._links_by_src: dict[TaskId, list[_Link]] | None = None
        self._links_by_dst: dict[TaskId, list[_Link]] | None = None

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #

    def add(self, name: str, graph: TaskGraph) -> "ComposedGraph":
        """Add a component under ``name``; returns self for chaining."""
        if name in self._by_name:
            raise GraphError(f"duplicate component name {name!r}")
        id_base = self.size()
        cb_base = sum(len(p.graph.callbacks()) for p in self._parts)
        part = _Part(name, graph, id_base, cb_base)
        self._parts.append(part)
        self._by_name[name] = part
        self._links_by_src = self._links_by_dst = None
        return self

    def link(
        self,
        src_part: str,
        src_tid: TaskId,
        src_channel: int,
        dst_part: str,
        dst_tid: TaskId,
        dst_slot: int,
    ) -> "ComposedGraph":
        """Connect a sink channel of one component to an external input
        slot of another.

        The source task's ``outgoing[src_channel]`` must target TNULL (a
        caller-facing sink) and the destination task's
        ``incoming[dst_slot]`` must be EXTERNAL; both endpoints are rewired
        to each other in the composed graph.

        Raises:
            GraphError: if either endpoint does not exist or is not
                linkable.
        """
        sp = self._part(src_part)
        dp = self._part(dst_part)
        src_task = sp.graph.task(src_tid)
        dst_task = dp.graph.task(dst_tid)
        if src_channel >= src_task.n_outputs:
            raise GraphError(
                f"{src_part}:{src_tid} has no output channel {src_channel}"
            )
        channel = src_task.outgoing[src_channel]
        if channel and TNULL not in channel:
            raise GraphError(
                f"{src_part}:{src_tid} channel {src_channel} is not a sink "
                f"(targets {channel})"
            )
        if dst_slot >= dst_task.n_inputs:
            raise GraphError(
                f"{dst_part}:{dst_tid} has no input slot {dst_slot}"
            )
        if dst_task.incoming[dst_slot] != EXTERNAL:
            raise GraphError(
                f"{dst_part}:{dst_tid} input slot {dst_slot} is not EXTERNAL"
            )
        link = _Link(
            sp.id_base + src_tid, src_channel, dp.id_base + dst_tid, dst_slot
        )
        for existing in self._links:
            if (
                existing.dst_gid == link.dst_gid
                and existing.dst_slot == link.dst_slot
            ):
                raise GraphError(
                    f"input slot {dst_slot} of {dst_part}:{dst_tid} already linked"
                )
        self._links.append(link)
        self._links_by_src = self._links_by_dst = None
        return self

    # ------------------------------------------------------------------ #
    # Id conversion
    # ------------------------------------------------------------------ #

    def global_id(self, part: str, tid: TaskId) -> TaskId:
        """Global id of component task ``tid``."""
        p = self._part(part)
        if not any(t == tid for t in p.graph.task_ids()):
            raise GraphError(f"{part!r} has no task {tid}")
        return p.id_base + tid

    def local_id(self, gid: TaskId) -> tuple[str, TaskId]:
        """Map a global id back to ``(component name, component task id)``."""
        part = self._owner(gid)
        return part.name, gid - part.id_base

    def callback_id(self, part: str, local_cb: CallbackId) -> CallbackId:
        """Global callback id for a component's local callback id.

        ``local_cb`` is an entry of the *component's* ``callbacks()`` list;
        the composed graph shifts each component's callback ids into a
        disjoint block.
        """
        p = self._part(part)
        if local_cb not in p.graph.callbacks():
            raise GraphError(
                f"{part!r} does not declare callback id {local_cb}"
            )
        return p.cb_base + local_cb

    # ------------------------------------------------------------------ #
    # TaskGraph interface
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        return sum(p.graph.size() for p in self._parts)

    def task_ids(self):
        for p in self._parts:
            for tid in p.graph.task_ids():
                yield p.id_base + tid

    def callbacks(self) -> list[CallbackId]:
        out: list[CallbackId] = []
        for p in self._parts:
            out.extend(p.cb_base + c for c in p.graph.callbacks())
        return out

    def task(self, gid: TaskId) -> Task:
        part = self._owner(gid)
        local = part.graph.task(gid - part.id_base)
        incoming = [
            src if src < 0 else src + part.id_base for src in local.incoming
        ]
        outgoing = [
            [dst if dst < 0 else dst + part.id_base for dst in channel]
            for channel in local.outgoing
        ]
        self._build_link_index()
        assert self._links_by_src is not None and self._links_by_dst is not None
        for link in self._links_by_src.get(gid, []):
            channel = outgoing[link.src_channel]
            if TNULL in channel:
                channel[channel.index(TNULL)] = link.dst_gid
            else:
                channel.append(link.dst_gid)
        for link in self._links_by_dst.get(gid, []):
            incoming[link.dst_slot] = link.src_gid
        return Task(
            id=gid,
            callback=part.cb_base + local.callback,
            incoming=incoming,
            outgoing=outgoing,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _part(self, name: str) -> _Part:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"unknown component {name!r}") from None

    def _owner(self, gid: TaskId) -> _Part:
        for p in reversed(self._parts):
            if gid >= p.id_base:
                if gid < p.id_base + p.graph.size():
                    return p
                break
        raise GraphError(f"global task id {gid} not in any component")

    def _build_link_index(self) -> None:
        if self._links_by_src is not None:
            return
        by_src: dict[TaskId, list[_Link]] = {}
        by_dst: dict[TaskId, list[_Link]] = {}
        for link in self._links:
            by_src.setdefault(link.src_gid, []).append(link)
            by_dst.setdefault(link.dst_gid, []).append(link)
        self._links_by_src = by_src
        self._links_by_dst = by_dst
