"""Distributed global statistics: the paper's swap-the-callbacks example.

Mergeable summaries (count/mean/variance/extrema/histogram/quantiles)
over the stock reduction graph — Section III's "changing the callbacks
... one can also compute global statistics" made concrete.
"""

from repro.analysis.statistics.summary import SummaryStats
from repro.analysis.statistics.tasks import StatisticsCostParams, StatisticsWorkload

__all__ = ["StatisticsCostParams", "StatisticsWorkload", "SummaryStats"]
