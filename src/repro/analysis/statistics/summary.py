"""Mergeable summary statistics.

The paper's Section III: *"changing the callbacks in the listing above,
one can also compute global statistics or execute any number of
reduction-based algorithms."*  This module provides the mergeable
accumulator those callbacks need: count, mean, variance (Chan et al.'s
pairwise update — numerically stable under any reduction tree shape),
extrema, and a fixed-bin histogram with quantile queries.

``merge`` is associative and commutative up to floating-point roundoff,
so the same statistics come out of any reduction valence, any task
placement, and any runtime — which the property tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SummaryStats:
    """Streaming-mergeable summary of a scalar sample.

    Build leaf summaries with :meth:`from_array`, combine with
    :meth:`merge`.  An empty summary (``count == 0``) is the identity
    element.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    bin_range: tuple[float, float] = (0.0, 1.0)
    histogram: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    @classmethod
    def from_array(
        cls,
        values: np.ndarray,
        bins: int = 32,
        bin_range: tuple[float, float] = (0.0, 1.0),
    ) -> "SummaryStats":
        """Summarize an array (any shape; flattened).

        Raises:
            ValueError: for a non-positive bin count or an empty range.
        """
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        lo, hi = bin_range
        if not hi > lo:
            raise ValueError(f"empty bin range {bin_range}")
        flat = np.asarray(values, dtype=np.float64).ravel()
        if flat.size == 0:
            return cls(
                bin_range=bin_range,
                histogram=np.zeros(bins, dtype=np.int64),
            )
        hist, _ = np.histogram(np.clip(flat, lo, hi), bins=bins, range=bin_range)
        return cls(
            count=int(flat.size),
            mean=float(flat.mean()),
            m2=float(((flat - flat.mean()) ** 2).sum()),
            minimum=float(flat.min()),
            maximum=float(flat.max()),
            bin_range=bin_range,
            histogram=hist.astype(np.int64),
        )

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #

    def merge(self, other: "SummaryStats") -> "SummaryStats":
        """Combine two summaries (Chan's pairwise mean/M2 update).

        Raises:
            ValueError: when the histograms are incompatible.
        """
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        if (
            len(self.histogram) != len(other.histogram)
            or self.bin_range != other.bin_range
        ):
            raise ValueError("cannot merge summaries with different histograms")
        n = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / n
        m2 = (
            self.m2
            + other.m2
            + delta * delta * self.count * other.count / n
        )
        return SummaryStats(
            count=n,
            mean=mean,
            m2=m2,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            bin_range=self.bin_range,
            histogram=self.histogram + other.histogram,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 samples)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return float(np.sqrt(self.variance))

    def quantile(self, q: float) -> float:
        """Approximate quantile from the histogram (bin interpolation).

        Raises:
            ValueError: for q outside [0, 1] or an empty summary.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty summary")
        target = q * self.count
        cum = np.cumsum(self.histogram)
        idx = int(np.searchsorted(cum, target))
        idx = min(idx, len(self.histogram) - 1)
        lo, hi = self.bin_range
        width = (hi - lo) / len(self.histogram)
        prev = float(cum[idx - 1]) if idx > 0 else 0.0
        in_bin = float(self.histogram[idx])
        frac = (target - prev) / in_bin if in_bin > 0 else 0.0
        return lo + (idx + min(max(frac, 0.0), 1.0)) * width

    @property
    def nbytes(self) -> int:
        """Wire-size estimate."""
        return 64 + int(self.histogram.nbytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SummaryStats):
            return NotImplemented
        return (
            self.count == other.count
            and self.mean == other.mean
            and self.m2 == other.m2
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            and self.bin_range == other.bin_range
            and np.array_equal(self.histogram, other.histogram)
        )
