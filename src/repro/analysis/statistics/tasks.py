"""BabelFlow wiring of distributed global statistics.

The smallest complete workload in the repository — and deliberately so:
it is the paper's own example of reassembling an algorithm by swapping
callbacks on the stock :class:`~repro.graphs.reduction.Reduction` graph.
Each leaf summarizes its block, every join merges summaries, the root
returns the global :class:`~repro.analysis.statistics.summary.
SummaryStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.statistics.summary import SummaryStats
from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.graphs.reduction import Reduction
from repro.runtimes.controller import Controller
from repro.runtimes.costs import CallableCost, CostModel
from repro.runtimes.registry import coerce_controller


@dataclass(frozen=True)
class StatisticsCostParams:
    """Analytic cost constants for the statistics workload."""

    summarize_per_voxel: float = 3e-9
    merge_per_bin: float = 2e-9


class StatisticsWorkload:
    """Distributed descriptive statistics over a scalar field.

    Args:
        field: the global 3D scalar field.
        n_blocks: leaves of the reduction (power of ``valence``).
        valence: reduction fan-in.
        bins: histogram bins.
        bin_range: histogram range; defaults to the field's min/max.
        sim_shape: pretended problem size for costs/wire sizes.
    """

    def __init__(
        self,
        field: np.ndarray,
        n_blocks: int,
        valence: int = 4,
        bins: int = 32,
        bin_range: tuple[float, float] | None = None,
        sim_shape: tuple[int, int, int] | None = None,
        cost_params: StatisticsCostParams = StatisticsCostParams(),
    ) -> None:
        if field.ndim != 3:
            raise ValueError("field must be 3D")
        self.field = np.asarray(field, dtype=np.float64)
        self.decomp = BlockDecomposition.regular(self.field.shape, n_blocks)
        self.graph = Reduction(n_blocks, valence)
        self.bins = bins
        if bin_range is None:
            bin_range = (float(self.field.min()), float(self.field.max()) + 1e-12)
        self.bin_range = bin_range
        self.params = cost_params
        real_voxels = float(np.prod(self.field.shape))
        sim_voxels = (
            float(np.prod(sim_shape)) if sim_shape is not None else real_voxels
        )
        self.volume_scale = sim_voxels / real_voxels

    # ------------------------------------------------------------------ #
    # Controller plumbing
    # ------------------------------------------------------------------ #

    def register(self, controller: Controller) -> None:
        """Register the three callbacks."""
        g = self.graph
        controller.register_callback(g.LEAF, self.summarize)
        controller.register_callback(g.REDUCE, self.merge)
        controller.register_callback(g.ROOT, self.merge)

    def initial_inputs(self) -> dict[TaskId, Payload]:
        """Block payloads keyed by leaf task id."""
        return {
            self.graph.leaf_id(b): Payload(
                self.decomp.extract_block(self.field, b)
            )
            for b in range(self.decomp.n_blocks)
        }

    def run(self, controller: Controller | str, task_map=None, **kwargs):
        """Initialize, register, and run on ``controller`` (a registry
        name such as ``"mpi"`` also works, with ``n_procs=`` and
        constructor kwargs passed through)."""
        controller = coerce_controller(controller, **kwargs)
        controller.initialize(self.graph, task_map)
        self.register(controller)
        return controller.run(self.initial_inputs())

    # ------------------------------------------------------------------ #
    # Callbacks
    # ------------------------------------------------------------------ #

    def summarize(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """LEAF: summarize the local block."""
        data = inputs[0].data
        if isinstance(data, SummaryStats):  # degenerate 1-leaf root
            return [self._payload(data)]
        stats = SummaryStats.from_array(data, self.bins, self.bin_range)
        return [self._payload(stats)]

    def merge(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """REDUCE/ROOT: fold the children's summaries; also handles the
        degenerate single-leaf graph where the root gets the raw block."""
        if len(inputs) == 1 and not isinstance(inputs[0].data, SummaryStats):
            return self.summarize(inputs, tid)
        acc = inputs[0].data
        for p in inputs[1:]:
            acc = acc.merge(p.data)
        return [self._payload(acc)]

    # ------------------------------------------------------------------ #
    # Results / costs
    # ------------------------------------------------------------------ #

    def global_stats(self, result) -> SummaryStats:
        """The run's global summary."""
        return result.output(self.graph.root_id).data

    def reference(self) -> SummaryStats:
        """Single-pass summary of the whole field (ground truth shape)."""
        return SummaryStats.from_array(self.field, self.bins, self.bin_range)

    def cost_model(self) -> CostModel:
        g = self.graph
        p = self.params

        def cost(task, inputs):
            if task.callback == g.LEAF:
                return (
                    p.summarize_per_voxel
                    * inputs[0].data.size
                    * self.volume_scale
                )
            return p.merge_per_bin * self.bins * len(inputs)

        return CallableCost(cost)

    def _payload(self, stats: SummaryStats) -> Payload:
        return Payload(stats, nbytes=stats.nbytes)
