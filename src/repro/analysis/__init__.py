"""The paper's three large-scale use cases.

* :mod:`repro.analysis.mergetree` -- topological feature extraction.
* :mod:`repro.analysis.rendering` -- rendering + image compositing.
* :mod:`repro.analysis.registration` -- tiled volume registration.
"""
