"""Per-feature statistics over a segmentation.

The paper's Fig. 4 shows the extracted ignition regions; downstream
analysis wants numbers per feature — size, peak value, mass, centroid.
This module computes them vectorized from a (global or assembled) label
volume plus the scalar field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FeatureStats:
    """Summary of one feature (superlevel component).

    Attributes:
        label: the feature's representative gid.
        voxels: number of member voxels.
        peak: maximum field value inside the feature.
        mass: sum of field values over the feature.
        centroid: mean member coordinate ``(x, y, z)``.
    """

    label: int
    voxels: int
    peak: float
    mass: float
    centroid: tuple[float, float, float]


def feature_statistics(
    segmentation: np.ndarray, field: np.ndarray
) -> list[FeatureStats]:
    """Compute per-feature statistics, largest feature first.

    Args:
        segmentation: int64 label volume (-1 below threshold), e.g. from
            :meth:`MergeTreeWorkload.assemble` or
            :func:`reference_segmentation`.
        field: the scalar field of the same shape.

    Raises:
        ValueError: on shape mismatch.
    """
    if segmentation.shape != field.shape:
        raise ValueError(
            f"segmentation {segmentation.shape} vs field {field.shape}"
        )
    flat_seg = segmentation.ravel()
    flat_val = np.asarray(field, dtype=np.float64).ravel()
    mask = flat_seg >= 0
    if not mask.any():
        return []
    labels, inverse = np.unique(flat_seg[mask], return_inverse=True)
    n = len(labels)
    vals = flat_val[mask]
    voxels = np.bincount(inverse, minlength=n)
    mass = np.bincount(inverse, weights=vals, minlength=n)
    peak = np.full(n, -np.inf)
    np.maximum.at(peak, inverse, vals)
    coords = np.array(np.unravel_index(np.nonzero(mask)[0], field.shape)).T
    cx = np.bincount(inverse, weights=coords[:, 0], minlength=n) / voxels
    cy = np.bincount(inverse, weights=coords[:, 1], minlength=n) / voxels
    cz = np.bincount(inverse, weights=coords[:, 2], minlength=n) / voxels
    out = [
        FeatureStats(
            label=int(labels[i]),
            voxels=int(voxels[i]),
            peak=float(peak[i]),
            mass=float(mass[i]),
            centroid=(float(cx[i]), float(cy[i]), float(cz[i])),
        )
        for i in range(n)
    ]
    out.sort(key=lambda f: (-f.voxels, f.label))
    return out


def feature_table(stats: list[FeatureStats], limit: int = 20) -> str:
    """Render feature statistics as an aligned text table."""
    if not stats:
        return "(no features)"
    lines = [
        f"{'label':>10}{'voxels':>9}{'peak':>10}{'mass':>12}"
        f"{'centroid (x, y, z)':>26}"
    ]
    for f in stats[:limit]:
        cx, cy, cz = f.centroid
        lines.append(
            f"{f.label:>10}{f.voxels:>9}{f.peak:>10.4f}{f.mass:>12.3f}"
            f"{f'({cx:.1f}, {cy:.1f}, {cz:.1f})':>26}"
        )
    if len(stats) > limit:
        lines.append(f"... ({len(stats) - limit} more features)")
    return "\n".join(lines)
