"""Boundary trees for the distributed merge-tree protocol.

What must travel up the reduction is the part of a block's (or merged
region's) topology that can still change: the superlevel voxels on the
region's *outer* boundary, each tagged with its current component, plus
each such component's representative (its highest vertex — which may be
interior, so it is carried explicitly).  This is the fixed-threshold
analogue of Landge et al.'s boundary tree: interior structure is final
and stays home; boundary structure participates in joins.

:class:`BoundaryComponents` is that payload.  :func:`extract_boundary`
builds one from a leaf block's local segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mergetree.blocks import BlockDecomposition


@dataclass(eq=False)
class BoundaryComponents:
    """Superlevel boundary voxels of a region with component tags.

    Attributes:
        gids: int64 global ids of the boundary voxels (ascending, unique).
        comp_idx: int32 per-voxel index into the component table.
        comp_gid: int64 representative gid per component (the component's
            highest vertex anywhere in the region, ties to higher gid).
        comp_val: float64 representative value per component.
    """

    gids: np.ndarray
    comp_idx: np.ndarray
    comp_gid: np.ndarray
    comp_val: np.ndarray

    def __post_init__(self) -> None:
        if len(self.gids) != len(self.comp_idx):
            raise ValueError("gids and comp_idx must align")
        if len(self.comp_gid) != len(self.comp_val):
            raise ValueError("component table arrays must align")
        if len(self.comp_idx) and self.comp_idx.max(initial=-1) >= len(self.comp_gid):
            raise ValueError("comp_idx out of component-table range")

    @property
    def n_voxels(self) -> int:
        """Number of boundary voxels carried."""
        return len(self.gids)

    @property
    def n_components(self) -> int:
        """Number of live components carried."""
        return len(self.comp_gid)

    @property
    def nbytes(self) -> int:
        """Wire size estimate (used by the network model)."""
        return int(
            self.gids.nbytes
            + self.comp_idx.nbytes
            + self.comp_gid.nbytes
            + self.comp_val.nbytes
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoundaryComponents):
            return NotImplemented
        return (
            np.array_equal(self.gids, other.gids)
            and np.array_equal(self.comp_idx, other.comp_idx)
            and np.array_equal(self.comp_gid, other.comp_gid)
            and np.array_equal(self.comp_val, other.comp_val)
        )

    @classmethod
    def empty(cls) -> "BoundaryComponents":
        """A boundary with no voxels and no components."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def component_of(self, gid: int) -> tuple[int, float]:
        """Representative ``(gid, value)`` of the component holding a
        boundary voxel (test helper).

        Raises:
            KeyError: when ``gid`` is not a carried boundary voxel.
        """
        pos = np.searchsorted(self.gids, gid)
        if pos >= len(self.gids) or self.gids[pos] != gid:
            raise KeyError(f"gid {gid} not on this boundary")
        c = int(self.comp_idx[pos])
        return int(self.comp_gid[c]), float(self.comp_val[c])


def extract_boundary(
    decomp: BlockDecomposition,
    block_index: int,
    labels: np.ndarray,
    values: np.ndarray,
    gids: np.ndarray | None = None,
) -> BoundaryComponents:
    """Build the boundary payload of one leaf block.

    Args:
        decomp: the shared block decomposition.
        block_index: which block this is.
        labels: the block's local segmentation (gid of local rep per
            voxel, -1 below threshold), as from
            :func:`~repro.analysis.mergetree.sequential.segment_block`.
        values: the block's scalar field (to record rep values).
        gids: the block's global-id array, if the caller already has it
            (recomputed from the decomposition otherwise).

    Only voxels on faces shared with a neighboring block are carried;
    grid-boundary faces cannot merge with anything.
    """
    if labels.shape != values.shape:
        raise ValueError("labels and values must have the same shape")
    mask = decomp.boundary_mask(block_index) & (labels >= 0)
    bounds = decomp.block_bounds(block_index)
    if gids is None:
        gids = decomp.gids_array(bounds)
    # gid = (x*ny + y)*nz + z is strictly increasing in the block's C
    # order, and boolean selection preserves that order, so the selected
    # gids are already ascending — no sort needed.
    sel_gids = gids[mask].ravel()
    sel_labels = labels[mask].ravel()
    comp_gid, comp_idx = np.unique(sel_labels, return_inverse=True)
    # Representative values: reps are voxels of this block, so translate
    # each rep gid to block-local coordinates and read the field.
    (x0, _), (y0, _), (z0, _) = bounds
    _, ny, nz = decomp.shape
    reps = comp_gid.astype(np.int64)
    rz = reps % nz
    ry = (reps // nz) % ny
    rx = reps // (ny * nz)
    comp_val = values[rx - x0, ry - y0, rz - z0].astype(np.float64)
    return BoundaryComponents(
        gids=sel_gids.astype(np.int64),
        comp_idx=comp_idx.astype(np.int32),
        comp_gid=comp_gid.astype(np.int64),
        comp_val=comp_val,
    )
