"""Tracking features across timesteps.

In-situ topological analysis (the paper's deployment scenario) rarely
stops at per-step feature extraction: the scientific question is how
ignition regions are *born, move, merge, and die* over time.  This module
associates the features of consecutive segmentations by voxel overlap —
the standard overlap-based tracking criterion — and maintains persistent
track identities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class FeatureMatch:
    """One matched feature pair between two segmentations."""

    label_a: int
    label_b: int
    overlap: int


def match_features(
    seg_a: np.ndarray, seg_b: np.ndarray, min_overlap: int = 1
) -> list[FeatureMatch]:
    """Greedy one-to-one overlap matching between two segmentations.

    Args:
        seg_a: labels at the earlier step (-1 below threshold).
        seg_b: labels at the later step, same shape.
        min_overlap: smallest voxel overlap that counts as a match.

    Returns:
        Matches sorted by descending overlap; every feature appears in at
        most one match (greedy maximum-overlap assignment).

    Raises:
        ValueError: on shape mismatch or non-positive ``min_overlap``.
    """
    if seg_a.shape != seg_b.shape:
        raise ValueError(f"shapes differ: {seg_a.shape} vs {seg_b.shape}")
    if min_overlap < 1:
        raise ValueError("min_overlap must be >= 1")
    a = seg_a.ravel()
    b = seg_b.ravel()
    both = (a >= 0) & (b >= 0)
    if not both.any():
        return []
    pairs = np.stack([a[both], b[both]], axis=1)
    uniq, counts = np.unique(pairs, axis=0, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    used_a: set[int] = set()
    used_b: set[int] = set()
    out: list[FeatureMatch] = []
    for idx in order:
        la, lb = int(uniq[idx, 0]), int(uniq[idx, 1])
        c = int(counts[idx])
        if c < min_overlap or la in used_a or lb in used_b:
            continue
        used_a.add(la)
        used_b.add(lb)
        out.append(FeatureMatch(la, lb, c))
    return out


@dataclass
class TrackEvent:
    """One observation of a track at one step."""

    step: int
    label: int
    voxels: int


@dataclass
class Track:
    """The life of one feature across steps."""

    track_id: int
    events: list[TrackEvent] = field(default_factory=list)

    @property
    def born(self) -> int:
        """Step of first observation."""
        return self.events[0].step

    @property
    def last_seen(self) -> int:
        """Step of latest observation."""
        return self.events[-1].step

    @property
    def length(self) -> int:
        """Number of observations."""
        return len(self.events)


class FeatureTracker:
    """Assign persistent identities to features over a run.

    Feed segmentations in step order with :meth:`update`; features
    matched by overlap inherit the track id of their predecessor, new
    features open new tracks, unmatched old features end theirs.
    """

    def __init__(self, min_overlap: int = 1) -> None:
        self.min_overlap = min_overlap
        self.tracks: dict[int, Track] = {}
        self._next_id = 0
        self._prev_seg: np.ndarray | None = None
        self._prev_assign: dict[int, int] = {}

    def update(self, step: int, segmentation: np.ndarray) -> dict[int, int]:
        """Ingest one step; returns ``label -> track id`` for this step."""
        labels, counts = np.unique(
            segmentation[segmentation >= 0], return_counts=True
        )
        sizes = {int(l): int(c) for l, c in zip(labels, counts)}
        assign: dict[int, int] = {}
        if self._prev_seg is not None:
            for m in match_features(
                self._prev_seg, segmentation, self.min_overlap
            ):
                prev_track = self._prev_assign.get(m.label_a)
                if prev_track is not None and m.label_b in sizes:
                    assign[m.label_b] = prev_track
        for label in sizes:
            if label not in assign:
                assign[label] = self._next_id
                self.tracks[self._next_id] = Track(self._next_id)
                self._next_id += 1
        for label, tid in assign.items():
            self.tracks[tid].events.append(
                TrackEvent(step=step, label=label, voxels=sizes[label])
            )
        self._prev_seg = segmentation
        self._prev_assign = assign
        return dict(assign)

    def alive_at(self, step: int) -> list[int]:
        """Track ids observed exactly at ``step``."""
        return sorted(
            tid
            for tid, tr in self.tracks.items()
            if any(e.step == step for e in tr.events)
        )

    def summary(self) -> str:
        """One line per track: id, lifetime, peak size."""
        lines = [f"{'track':>7}{'born':>7}{'last':>7}{'obs':>6}{'peak vox':>10}"]
        for tid in sorted(self.tracks):
            tr = self.tracks[tid]
            peak = max(e.voxels for e in tr.events)
            lines.append(
                f"{tid:>7}{tr.born:>7}{tr.last_seen:>7}{tr.length:>6}{peak:>10}"
            )
        return "\n".join(lines)
