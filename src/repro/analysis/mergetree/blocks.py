"""Block decomposition of a 3D scalar grid for the merge-tree dataflow.

The distributed merge tree works on a regular decomposition of the global
grid into ``n`` axis-aligned blocks; every task (local compute, join,
correction, segmentation) shares the same static
:class:`BlockDecomposition` and uses it to translate between global linear
vertex ids, global coordinates and block indices — exactly the kind of
small procedural metadata the paper replicates on every rank instead of
shipping around.

Conventions: arrays are indexed ``[x, y, z]`` in C order; the global
linear id of coordinate ``(x, y, z)`` is ``(x * ny + y) * nz + z``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.util.partition import block_layout, split_range

#: Offsets of the 6-connected neighborhood.
NEIGHBOR_OFFSETS: tuple[tuple[int, int, int], ...] = (
    (-1, 0, 0),
    (1, 0, 0),
    (0, -1, 0),
    (0, 1, 0),
    (0, 0, -1),
    (0, 0, 1),
)


@dataclass(frozen=True)
class BlockDecomposition:
    """Static decomposition of ``shape`` into a grid of blocks.

    Args:
        shape: global grid shape ``(nx, ny, nz)``.
        layout: blocks per axis ``(bx, by, bz)``.

    Use :meth:`regular` to build one from a desired block count.
    """

    shape: tuple[int, int, int]
    layout: tuple[int, int, int]

    @classmethod
    def regular(cls, shape: tuple[int, int, int], nblocks: int) -> "BlockDecomposition":
        """Decompose ``shape`` into ``nblocks`` near-cubic blocks."""
        return cls(tuple(shape), block_layout(shape, nblocks))

    def __post_init__(self) -> None:
        # Normalize to tuples so the decomposition is hashable (the
        # hot-path per-block caches below are keyed by it).
        object.__setattr__(self, "shape", tuple(self.shape))
        object.__setattr__(self, "layout", tuple(self.layout))
        if len(self.shape) != 3 or len(self.layout) != 3:
            raise ValueError("shape and layout must be 3D")
        for s, l in zip(self.shape, self.layout):
            if s <= 0 or l <= 0:
                raise ValueError(f"invalid shape {self.shape} / layout {self.layout}")
            if l > s:
                raise ValueError(
                    f"more blocks than grid points along an axis "
                    f"({self.layout} vs {self.shape})"
                )

    @property
    def n_blocks(self) -> int:
        """Total number of blocks."""
        bx, by, bz = self.layout
        return bx * by * bz

    # ------------------------------------------------------------------ #
    # Block index algebra (z-fastest, matching util.partition order)
    # ------------------------------------------------------------------ #

    def block_coords(self, block: int) -> tuple[int, int, int]:
        """Per-axis block coordinate of block index ``block``."""
        bx, by, bz = self.layout
        if not 0 <= block < bx * by * bz:
            raise ValueError(f"block {block} out of range")
        cz = block % bz
        cy = (block // bz) % by
        cx = block // (by * bz)
        return cx, cy, cz

    def block_index(self, coords: tuple[int, int, int]) -> int:
        """Inverse of :meth:`block_coords`."""
        cx, cy, cz = coords
        bx, by, bz = self.layout
        if not (0 <= cx < bx and 0 <= cy < by and 0 <= cz < bz):
            raise ValueError(f"block coords {coords} out of layout {self.layout}")
        return (cx * by + cy) * bz + cz

    @lru_cache(maxsize=None)
    def block_bounds(self, block: int) -> tuple[tuple[int, int], ...]:
        """Per-axis ``[lo, hi)`` voxel bounds of ``block`` (cached: the
        decomposition is immutable and every task recomputes its block's
        bounds)."""
        coords = self.block_coords(block)
        return tuple(
            split_range(s, parts, c)
            for s, parts, c in zip(self.shape, self.layout, coords)
        )

    @lru_cache(maxsize=None)
    def axis_block_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis lookup arrays mapping a global coordinate to its
        block coordinate along that axis (cached, read-only).

        ``axis_block_tables()[0][x]`` equals the x block coordinate that
        :meth:`block_of_point` computes — the closed-form divmod algebra,
        tabulated once so bulk queries are plain fancy indexing.
        """
        tables = []
        for size, parts in zip(self.shape, self.layout):
            base, extra = divmod(size, parts)
            pivot = extra * (base + 1)
            v = np.arange(size, dtype=np.int64)
            if base:
                t = np.where(
                    v < pivot, v // (base + 1), extra + (v - pivot) // base
                )
            else:
                t = v  # base == 0: every block holds exactly one voxel
            t.flags.writeable = False
            tables.append(t)
        return tuple(tables)

    def block_of_point(self, x: int, y: int, z: int) -> int:
        """Block containing global coordinate ``(x, y, z)``."""
        coords = []
        for v, s, parts in zip((x, y, z), self.shape, self.layout):
            if not 0 <= v < s:
                raise ValueError(f"point ({x},{y},{z}) outside grid {self.shape}")
            base, extra = divmod(s, parts)
            pivot = extra * (base + 1)
            if v < pivot:
                coords.append(v // (base + 1))
            else:
                coords.append(extra + (v - pivot) // base if base else extra)
        return self.block_index(tuple(coords))

    # ------------------------------------------------------------------ #
    # Vertex id algebra
    # ------------------------------------------------------------------ #

    def gid(self, x: int, y: int, z: int) -> int:
        """Global linear id of coordinate ``(x, y, z)``."""
        _, ny, nz = self.shape
        return (x * ny + y) * nz + z

    def coords(self, gid: int) -> tuple[int, int, int]:
        """Inverse of :meth:`gid`."""
        nx, ny, nz = self.shape
        if not 0 <= gid < nx * ny * nz:
            raise ValueError(f"gid {gid} outside grid")
        z = gid % nz
        y = (gid // nz) % ny
        x = gid // (ny * nz)
        return x, y, z

    def gids_array(self, bounds: tuple[tuple[int, int], ...]) -> np.ndarray:
        """Global ids of every voxel in ``bounds``, shaped like the block."""
        (x0, x1), (y0, y1), (z0, z1) = bounds
        _, ny, nz = self.shape
        xs = np.arange(x0, x1, dtype=np.int64)[:, None, None]
        ys = np.arange(y0, y1, dtype=np.int64)[None, :, None]
        zs = np.arange(z0, z1, dtype=np.int64)[None, None, :]
        return (xs * ny + ys) * nz + zs

    def extract_block(self, field: np.ndarray, block: int) -> np.ndarray:
        """Copy of one block's sub-array of the global ``field``."""
        if field.shape != self.shape:
            raise ValueError(
                f"field shape {field.shape} != decomposition shape {self.shape}"
            )
        (x0, x1), (y0, y1), (z0, z1) = self.block_bounds(block)
        return np.ascontiguousarray(field[x0:x1, y0:y1, z0:z1])

    @lru_cache(maxsize=None)
    def boundary_mask(self, block: int) -> np.ndarray:
        """Boolean mask (block-shaped) of voxels on an *interior* block
        face, i.e. faces shared with a neighboring block (grid-boundary
        faces do not count: nothing can merge through them).  Cached and
        read-only: combine with ``&``, do not write into it."""
        (x0, x1), (y0, y1), (z0, z1) = self.block_bounds(block)
        shape = (x1 - x0, y1 - y0, z1 - z0)
        mask = np.zeros(shape, dtype=bool)
        nx, ny, nz = self.shape
        if x0 > 0:
            mask[0, :, :] = True
        if x1 < nx:
            mask[-1, :, :] = True
        if y0 > 0:
            mask[:, 0, :] = True
        if y1 < ny:
            mask[:, -1, :] = True
        if z0 > 0:
            mask[:, :, 0] = True
        if z1 < nz:
            mask[:, :, -1] = True
        mask.flags.writeable = False
        return mask
