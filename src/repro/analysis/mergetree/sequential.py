"""Sequential (single-block) merge-tree construction and segmentation.

This is the computational core of the topological-analysis use case: the
*join tree* of a scalar field tracks how superlevel-set components
``{f >= t}`` appear at maxima and merge at saddles as the threshold ``t``
sweeps downward.  Features ("ignition regions" in the paper's combustion
data) are the components at a fixed threshold, each identified by its
highest vertex.

The implementation is the standard union-find sweep over vertices in
descending scalar order, augmented so *every* vertex is a tree node (the
segmentation needs per-vertex assignment anyway).  Ties are broken by
global vertex id, which makes every result — including across different
block decompositions — deterministic and exactly comparable.

:func:`reference_segmentation` is an independent scipy-based
implementation used by the tests to cross-check the union-find code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mergetree.union_find import ArrayUnionFind

#: 6-connected neighbor offsets as (dx, dy, dz).
_OFFSETS = ((-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1))


@dataclass
class JoinTree:
    """An augmented join tree over a set of vertices.

    Nodes are stored in *sweep order* (descending ``(value, gid)``), so
    node 0 is the global maximum of the set.  ``parent[i]`` is the sweep
    index of the next lower node ``i``'s component grew into (or -1 for
    the last node of a connected component, the tree root at the
    component's minimum).

    Attributes:
        gids: global vertex id per node.
        values: scalar value per node.
        parent: parent sweep-index per node (-1 at roots).
        flat: optional flat (C-order) voxel index per node within the
            source block; :func:`block_join_tree` fills it so
            :func:`segment_block` can scatter labels without a gid
            lookup.
    """

    gids: np.ndarray
    values: np.ndarray
    parent: np.ndarray
    flat: np.ndarray | None = None

    @property
    def n_nodes(self) -> int:
        """Number of nodes (vertices) in the tree."""
        return len(self.gids)

    def roots(self) -> np.ndarray:
        """Sweep indices of the tree roots (component minima)."""
        return np.nonzero(self.parent < 0)[0]

    def maxima(self) -> np.ndarray:
        """Sweep indices of the leaves of the join tree (local maxima)."""
        has_child = np.zeros(self.n_nodes, dtype=bool)
        valid = self.parent >= 0
        has_child[self.parent[valid]] = True
        return np.nonzero(~has_child)[0]

    def validate(self) -> None:
        """Check structural invariants (tests call this).

        Raises:
            ValueError: if nodes are not in sweep order, or a parent does
                not have a lower ``(value, gid)`` than its child.
        """
        v, g = self.values, self.gids
        order = np.lexsort((-g, -v))
        if not np.array_equal(order, np.arange(self.n_nodes)):
            raise ValueError("nodes are not in descending sweep order")
        valid = self.parent >= 0
        child = np.nonzero(valid)[0]
        par = self.parent[valid]
        bad = (v[par] > v[child]) | ((v[par] == v[child]) & (g[par] > g[child]))
        if bad.any():
            raise ValueError("a parent node is higher than its child")

    # ------------------------------------------------------------------ #
    # Segmentation
    # ------------------------------------------------------------------ #

    def segment(self, threshold: float) -> np.ndarray:
        """Label every node with the gid of its feature at ``threshold``.

        A feature is a connected component of the superlevel set
        ``{value >= threshold}``; its label is the gid of its highest
        vertex (ties to the higher gid).  Nodes below the threshold get
        label -1.

        Returns:
            int64 array aligned with the node arrays.
        """
        n = self.n_nodes
        labels = np.full(n, -1, dtype=np.int64)
        above = self.values >= threshold
        if not above.any():
            return labels
        # piece_root[i]: the lowest node of i's superlevel piece.  Parents
        # come later in sweep order, so a reverse scan sees parents first.
        piece_root = np.arange(n, dtype=np.int64)
        parent = self.parent
        for i in range(n - 1, -1, -1):
            if not above[i]:
                continue
            p = parent[i]
            if p >= 0 and above[p]:
                piece_root[i] = piece_root[p]
        # The first node of each piece in sweep order is its maximum.
        rep_of_piece: dict[int, int] = {}
        for i in range(n):
            if not above[i]:
                continue
            root = int(piece_root[i])
            rep = rep_of_piece.setdefault(root, i)
            labels[i] = self.gids[rep]
        return labels

    def feature_count(self, threshold: float) -> int:
        """Number of features (superlevel components) at ``threshold``."""
        labels = self.segment(threshold)
        return len(np.unique(labels[labels >= 0]))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def persistence_pairs(self) -> list[tuple[int, int, float]]:
        """Branch decomposition of the join tree.

        Sweeping the threshold downward, every local maximum starts a
        component; when two components meet at a merge saddle the one
        with the lower maximum *dies* there.  Returns one
        ``(max_sweep_index, saddle_sweep_index, persistence)`` triple per
        dying branch (the globally highest maximum of each connected
        component never dies and is not listed).  Persistence is
        ``value[max] - value[saddle]``, always >= 0.
        """
        n = self.n_nodes
        children: dict[int, list[int]] = {}
        for i in range(n):
            p = int(self.parent[i])
            if p >= 0:
                children.setdefault(p, []).append(i)
        rep = np.arange(n, dtype=np.int64)  # surviving max per branch
        pairs: list[tuple[int, int, float]] = []
        # Children have higher values, hence smaller sweep indices: a
        # forward scan sees every child before its parent.
        for v in range(n):
            ch = children.get(v)
            if not ch:
                continue  # a maximum: starts its own branch
            best = min(ch, key=lambda c: int(rep[c]))  # smallest index = highest
            for c in ch:
                if rep[c] != rep[best]:
                    dying = int(rep[c])
                    pairs.append(
                        (dying, v, float(self.values[dying] - self.values[v]))
                    )
            rep[v] = rep[best]
        return pairs

    def simplified_segment(
        self,
        threshold: float,
        min_persistence: float,
        merge_across_threshold: bool = False,
    ) -> np.ndarray:
        """Segment at ``threshold`` after persistence simplification.

        Features whose maximum dies with persistence below
        ``min_persistence`` are merged into the feature that absorbed
        them.  Two semantics are offered:

        * ``merge_across_threshold=False`` (default): a dying feature
          merges only when its saddle lies at or above the threshold.
          Since two *distinct* superlevel components always connect below
          the threshold, this semantic only collapses maxima inside one
          component — it cleans labels, never feature counts.
        * ``merge_across_threshold=True``: branch-decomposition semantics
          (Landge et al.'s relevance-style segmentation): a low-
          persistence branch hands its voxels to its absorbing branch
          even when the connecting saddle is below the threshold, so
          spatially separate lobes of one "simplified feature" share a
          label and the feature count drops as ``min_persistence``
          rises.

        ``min_persistence = 0`` reproduces :meth:`segment` exactly.

        Note: cross-threshold merging needs the saddles to *exist* in the
        tree — build it without threshold pruning
        (``block_join_tree(..., threshold=-inf)``) when using
        ``merge_across_threshold=True``.
        """
        labels = self.segment(threshold)
        if min_persistence <= 0:
            return labels
        # Map each dying max gid to its absorber via low-persistence
        # saddles above the threshold.
        index_of = {int(g): i for i, g in enumerate(self.gids)}
        absorber: dict[int, int] = {}
        saddle_rep: dict[int, int] = {}
        n = self.n_nodes
        children: dict[int, list[int]] = {}
        for i in range(n):
            p = int(self.parent[i])
            if p >= 0:
                children.setdefault(p, []).append(i)
        rep = np.arange(n, dtype=np.int64)
        for v in range(n):
            ch = children.get(v)
            if not ch:
                continue
            best = min(ch, key=lambda c: int(rep[c]))
            for c in ch:
                if rep[c] != rep[best]:
                    dying = int(rep[c])
                    pers = float(self.values[dying] - self.values[v])
                    saddle_ok = (
                        merge_across_threshold
                        or self.values[v] >= threshold
                    )
                    if pers < min_persistence and saddle_ok:
                        absorber[dying] = int(rep[best])
            rep[v] = rep[best]

        def resolve(idx: int) -> int:
            seen = []
            while idx in absorber:
                seen.append(idx)
                idx = absorber[idx]
            for s in seen:
                absorber[s] = idx
            return idx

        out = labels.copy()
        for i in range(n):
            l = int(labels[i])
            if l < 0:
                continue
            li = index_of[l]
            ri = resolve(li)
            if ri != li:
                out[i] = self.gids[ri]
        return out

    def simplified_feature_count(
        self,
        threshold: float,
        min_persistence: float,
        merge_across_threshold: bool = False,
    ) -> int:
        """Feature count after persistence simplification."""
        labels = self.simplified_segment(
            threshold, min_persistence, merge_across_threshold
        )
        return len(np.unique(labels[labels >= 0]))


def block_join_tree(
    block: np.ndarray, gids: np.ndarray, threshold: float = -np.inf
) -> JoinTree:
    """Build the join tree of one 3D block.

    Args:
        block: scalar field of shape ``(sx, sy, sz)``.
        gids: int64 array of the same shape with each voxel's *global*
            vertex id (ties in value break toward the higher gid).
        threshold: vertices below it are excluded entirely.  Passing the
            analysis threshold ("relevance" pruning) shrinks the tree to
            exactly what feature extraction needs.

    Returns:
        The join tree over the included voxels.
    """
    if block.shape != gids.shape:
        raise ValueError(f"block {block.shape} and gids {gids.shape} differ")
    if block.ndim != 3:
        raise ValueError("block must be 3D")
    sx, sy, sz = block.shape
    flat_vals = np.asarray(block, dtype=np.float64).ravel()
    flat_gids = np.asarray(gids, dtype=np.int64).ravel()

    cand = np.nonzero(flat_vals >= threshold)[0]
    m = len(cand)
    vals = flat_vals[cand]
    ids = flat_gids[cand]
    # Descending (value, gid): lexsort sorts ascending by last key.
    order = np.lexsort((-ids, -vals))
    vals = vals[order]
    ids = ids[order]
    flat_of_slot = cand[order]

    # slot_of[flat voxel index] -> sweep slot, or -1 when excluded.
    slot_of = np.full(flat_vals.size, -1, dtype=np.int64)
    slot_of[flat_of_slot] = np.arange(m)

    parent = np.full(m, -1, dtype=np.int64)
    if m == 0:
        return JoinTree(ids, vals, parent, flat_of_slot)

    uf = ArrayUnionFind(m)
    lowest = np.arange(m, dtype=np.int64)
    # Precomputed flat-index strides for the six neighbors.
    strides = (-sy * sz, sy * sz, -sz, sz, -1, 1)

    for slot in range(m):
        flat = int(flat_of_slot[slot])
        z = flat % sz
        y = (flat // sz) % sy
        x = flat // (sy * sz)
        for k, stride in enumerate(strides):
            if k == 0 and x == 0:
                continue
            if k == 1 and x == sx - 1:
                continue
            if k == 2 and y == 0:
                continue
            if k == 3 and y == sy - 1:
                continue
            if k == 4 and z == 0:
                continue
            if k == 5 and z == sz - 1:
                continue
            u_slot = slot_of[flat + stride]
            if u_slot < 0 or u_slot > slot:
                continue  # excluded, or not yet processed (lower)
            ru = uf.find(int(u_slot))
            rv = uf.find(slot)
            if ru == rv:
                continue
            parent[lowest[ru]] = slot
            uf.union(ru, rv)
            # rv survives and its lowest node is the vertex in hand.
            lowest[rv] = slot
    return JoinTree(ids, vals, parent, flat_of_slot)


def block_split_tree(
    block: np.ndarray, gids: np.ndarray, threshold: float = np.inf
) -> JoinTree:
    """Build the *split tree* of a block: sublevel-set components.

    The split tree is the join tree of the negated field — it tracks how
    components of ``{f <= t}`` appear at minima and merge as ``t`` rises.
    The returned structure stores the negated values (so
    :class:`JoinTree` invariants hold unchanged); segmenting it at
    ``-threshold`` labels sublevel components by their (negated-value)
    representative, i.e. the component *minimum*.

    Args:
        block: scalar field of shape ``(sx, sy, sz)``.
        gids: global vertex ids, same shape.
        threshold: vertices strictly above it are excluded (mirror of the
            join tree's pruning).
    """
    return block_join_tree(-np.asarray(block, dtype=np.float64), gids, -threshold)


def segment_block(
    block: np.ndarray, gids: np.ndarray, threshold: float
) -> np.ndarray:
    """Segment one block at ``threshold`` (block-local connectivity only).

    Returns:
        int64 label volume shaped like ``block``: the gid of each voxel's
        local feature representative, or -1 below the threshold.
    """
    tree = block_join_tree(block, gids, threshold=threshold)
    labels_nodes = tree.segment(threshold)
    out = np.full(block.size, -1, dtype=np.int64)
    # The tree carries each node's flat voxel index, so labels scatter
    # straight back into the block without a gid lookup.
    out[tree.flat] = labels_nodes
    return out.reshape(block.shape)


def reference_segmentation(field: np.ndarray, threshold: float) -> np.ndarray:
    """Independent global segmentation via :func:`scipy.ndimage.label`.

    Labels every voxel of ``field`` with the *gid* (C-order linear index)
    of the highest voxel of its 6-connected superlevel component, ties to
    the higher gid; -1 below threshold.  Used as ground truth in tests.
    """
    from scipy import ndimage

    mask = field >= threshold
    structure = ndimage.generate_binary_structure(3, 1)  # 6-connectivity
    comp, n = ndimage.label(mask, structure=structure)
    out = np.full(field.shape, -1, dtype=np.int64)
    if n == 0:
        return out
    flat_comp = comp.ravel()
    flat_vals = field.ravel()
    gids = np.arange(field.size, dtype=np.int64)
    # Representative per component: max value, ties to max gid.
    order = np.lexsort((gids, flat_vals))  # ascending; last wins
    rep = np.zeros(n + 1, dtype=np.int64)
    rep[flat_comp[order]] = gids[order]
    out_flat = np.where(flat_comp > 0, rep[flat_comp], -1)
    return out_flat.reshape(field.shape)
