"""Union-find (disjoint sets) used by the merge-tree algorithms.

Two flavours:

* :class:`UnionFind` — dict-keyed, for sparse node sets (boundary
  components keyed by global vertex id).
* :class:`ArrayUnionFind` — dense integer universe backed by a numpy
  array, for the per-block voxel sweeps.

Both use path compression; unions are by explicit "attach a to b" because
the merge-tree sweep dictates which root survives (the most recently
processed vertex).
"""

from __future__ import annotations

import numpy as np


class UnionFind:
    """Disjoint sets over hashable keys."""

    def __init__(self) -> None:
        self._parent: dict = {}

    def add(self, key) -> None:
        """Register ``key`` as a singleton (no-op if present)."""
        self._parent.setdefault(key, key)

    def __contains__(self, key) -> bool:
        return key in self._parent

    def find(self, key):
        """Root of ``key``'s set (with path compression).

        Raises:
            KeyError: for unregistered keys.
        """
        parent = self._parent
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def union(self, a, b):
        """Merge the sets of ``a`` and ``b``; ``b``'s root survives.

        Returns the surviving root.
        """
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb
        return rb

    def groups(self) -> dict:
        """Map of root -> sorted member list (test/debug helper)."""
        out: dict = {}
        for key in self._parent:
            out.setdefault(self.find(key), []).append(key)
        for members in out.values():
            members.sort()
        return out

    def __len__(self) -> int:
        return len(self._parent)


class ArrayUnionFind:
    """Disjoint sets over the dense universe ``0 .. n-1``.

    ``find`` uses iterative two-pass path compression; the inner loops are
    plain Python but operate on a preallocated numpy parent array, which
    profiling showed to be the fastest portable option for the voxel
    sweep's access pattern (single-element updates defeat vectorization).
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"universe size must be non-negative, got {n}")
        self._parent = np.arange(n, dtype=np.int64)

    def find(self, i: int) -> int:
        """Root of element ``i``."""
        parent = self._parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return int(root)

    def union(self, a: int, b: int) -> int:
        """Merge; the root of ``b`` survives.  Returns it."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb
        return rb

    def __len__(self) -> int:
        return len(self._parent)
