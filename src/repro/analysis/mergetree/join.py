"""The JOIN operation of the distributed merge-tree protocol.

A round-``r`` join receives the boundary components of ``k`` sibling
regions (round ``r-1`` subtrees, or leaf blocks when ``r == 1``) and:

1. unions components that touch across region interfaces — two superlevel
   boundary voxels that are 6-adjacent in the global grid merge their
   components;
2. elects each merged component's representative (maximum ``(value,
   gid)`` over the member reps — the true component maximum, because a
   component's max is one of its member regions' maxima);
3. emits the *relabel map* ``old rep -> (new rep, value)`` for every
   component whose representative changed — this is the augmented
   boundary tree sent down to the corrections; and
4. emits the merged region's boundary components *reduced to its outer
   boundary*: voxels whose every 6-neighbor lies inside the merged
   region can never participate in a later join and are dropped, along
   with components that no longer own any boundary voxel.

Everything is deterministic; the tests verify the end-to-end distributed
segmentation equals the scipy reference for random fields and arbitrary
decompositions.
"""

from __future__ import annotations

from typing import Collection, Sequence

import numpy as np

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.mergetree.boundary import BoundaryComponents
from repro.analysis.mergetree.union_find import UnionFind

#: Relabel map type: old rep gid -> (new rep gid, new rep value).
RelabelMap = dict[int, tuple[int, float]]


def join_components(
    parts: Sequence[BoundaryComponents],
    decomp: BlockDecomposition,
    region_blocks: Collection[int],
) -> tuple[BoundaryComponents, RelabelMap]:
    """Join sibling boundary components into one region.

    Args:
        parts: the children's boundary payloads.
        decomp: the shared block decomposition.
        region_blocks: block indices of the merged region (the join's
            subtree); used to decide which voxels remain on the outer
            boundary.

    Returns:
        ``(merged_boundary, relabel_map)``.
    """
    region = set(region_blocks)
    comp_val: dict[int, float] = {}
    uf = UnionFind()
    for p in parts:
        for c in range(p.n_components):
            rep = int(p.comp_gid[c])
            uf.add(rep)
            comp_val[rep] = float(p.comp_val[c])

    # Concatenate children (gids are disjoint across children) and sort
    # by gid so neighbor membership is a binary search, not a dict probe.
    if parts:
        all_gids = np.concatenate([p.gids for p in parts])
        all_reps = np.concatenate([p.comp_gid[p.comp_idx] for p in parts])
    else:
        all_gids = np.empty(0, np.int64)
        all_reps = np.empty(0, np.int64)
    order = np.argsort(all_gids, kind="stable")
    sg = all_gids[order]
    srep = all_reps[order]
    n_voxels = len(sg)

    # Union across interfaces: any 6-adjacent pair of carried voxels.
    # Adjacency is symmetric, so probing only the +stride neighbor of
    # each axis finds every pair once; distinct rep pairs are
    # deduplicated before union (the partition depends only on the *set*
    # of adjacent rep pairs, not their multiplicity or order, and
    # everything downstream depends only on the partition).
    nx, ny, nz = decomp.shape
    q = sg // nz
    z = sg - q * nz
    y = q % ny
    x = q // ny
    if n_voxels:
        pair_lo: list[np.ndarray] = []
        pair_hi: list[np.ndarray] = []
        for coord, size, stride in ((x, nx, ny * nz), (y, ny, nz), (z, nz, 1)):
            idx = (coord < size - 1).nonzero()[0]
            if not len(idx):
                continue
            ug = sg[idx] + stride
            pos = np.searchsorted(sg, ug)
            pos[pos == n_voxels] = 0  # out-of-range probes cannot match
            hit = sg[pos] == ug
            if not hit.any():
                continue
            ra = srep[idx[hit]]
            rb = srep[pos[hit]]
            ne = ra != rb
            if ne.any():
                pair_lo.append(np.minimum(ra[ne], rb[ne]))
                pair_hi.append(np.maximum(ra[ne], rb[ne]))
        if pair_lo:
            lo = np.concatenate(pair_lo)
            hi = np.concatenate(pair_hi)
            union = uf.union
            big = nx * ny * nz
            if big < 2**31:  # lo * big + hi cannot overflow int64
                for code in np.unique(lo * big + hi).tolist():
                    union(code // big, code % big)
            else:
                for a, b in set(zip(lo.tolist(), hi.tolist())):
                    union(a, b)

    # Elect the representative of each union class.
    classes: dict[int, list[int]] = {}
    for rep in comp_val:
        classes.setdefault(uf.find(rep), []).append(rep)
    new_rep_of: dict[int, int] = {}
    relabel: RelabelMap = {}
    for members in classes.values():
        best = max(members, key=lambda r: (comp_val[r], r))
        for r in members:
            new_rep_of[r] = best
            if r != best:
                relabel[r] = (best, comp_val[best])

    # Reduce to the merged region's outer boundary: keep a voxel when any
    # in-grid 6-neighbor lies in a block outside the region.  Block
    # lookups use the decomposition's cached per-axis coordinate ->
    # block-coordinate tables, and ``sg`` is already in the ascending-gid
    # order the old ``sorted()`` loop produced.
    region_sorted = np.sort(np.fromiter(region, dtype=np.int64, count=len(region)))
    n_region = len(region_sorted)
    _, by, bz = decomp.layout
    outer = np.zeros(n_voxels, dtype=bool)
    if n_voxels and not n_region:
        # No region: every voxel with an in-grid neighbor stays.
        outer = (
            (x > 0) | (x < nx - 1)
            | (y > 0) | (y < ny - 1)
            | (z > 0) | (z < nz - 1)
        )
    elif n_voxels:
        tx, ty, tz = decomp.axis_block_tables()
        cbx, cby, cbz = tx[x], ty[y], tz[z]
        byz = by * bz
        x_term = cbx * byz
        # Moving one step along an axis changes only that axis's block
        # coordinate; the other two contribute a fixed per-voxel term.
        axes = (
            (x, nx, tx, byz, cby * bz + cbz),
            (y, ny, ty, bz, x_term + cbz),
            (z, nz, tz, 1, x_term + cby * bz),
        )
        for coord, size, table, mult, rest in axes:
            for sign in (-1, 1):
                valid = (coord > 0 if sign < 0 else coord < size - 1) & ~outer
                idx = valid.nonzero()[0]
                if not len(idx):
                    continue
                blk = table[coord[idx] + sign] * mult + rest[idx]
                pos = np.searchsorted(region_sorted, blk)
                pos[pos == n_region] = 0
                outside = region_sorted[pos] != blk
                outer[idx[outside]] = True

    if outer.any():
        gids_arr = sg[outer]
        kept_reps = srep[outer]
        uniq, inv = np.unique(kept_reps, return_inverse=True)
        new_uniq = np.fromiter(
            (new_rep_of[int(r)] for r in uniq), dtype=np.int64, count=len(uniq)
        )
        reps_arr = new_uniq[inv]
        comp_gid, comp_idx = np.unique(reps_arr, return_inverse=True)
        comp_vals = np.array(
            [comp_val[new_rep_of.get(int(g), int(g))] for g in comp_gid],
            dtype=np.float64,
        )
        merged = BoundaryComponents(
            gids=gids_arr,
            comp_idx=comp_idx.astype(np.int32),
            comp_gid=comp_gid,
            comp_val=comp_vals,
        )
    else:
        merged = BoundaryComponents.empty()
    return merged, relabel


def compose_relabel(current: RelabelMap, update: RelabelMap) -> RelabelMap:
    """Compose an accumulated relabel map with a newer round's map.

    ``current`` maps original local reps to their latest global reps;
    ``update`` maps latest reps onward.  The result again maps original
    reps to the newest reps, and includes ``update``'s fresh entries so
    later compositions stay transitive.
    """
    out: RelabelMap = {}
    for old, (mid, mid_val) in current.items():
        new = update.get(mid)
        out[old] = new if new is not None else (mid, mid_val)
    for old, new in update.items():
        if old not in out:
            out[old] = new
    return out
