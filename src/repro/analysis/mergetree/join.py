"""The JOIN operation of the distributed merge-tree protocol.

A round-``r`` join receives the boundary components of ``k`` sibling
regions (round ``r-1`` subtrees, or leaf blocks when ``r == 1``) and:

1. unions components that touch across region interfaces — two superlevel
   boundary voxels that are 6-adjacent in the global grid merge their
   components;
2. elects each merged component's representative (maximum ``(value,
   gid)`` over the member reps — the true component maximum, because a
   component's max is one of its member regions' maxima);
3. emits the *relabel map* ``old rep -> (new rep, value)`` for every
   component whose representative changed — this is the augmented
   boundary tree sent down to the corrections; and
4. emits the merged region's boundary components *reduced to its outer
   boundary*: voxels whose every 6-neighbor lies inside the merged
   region can never participate in a later join and are dropped, along
   with components that no longer own any boundary voxel.

Everything is deterministic; the tests verify the end-to-end distributed
segmentation equals the scipy reference for random fields and arbitrary
decompositions.
"""

from __future__ import annotations

from typing import Collection, Sequence

import numpy as np

from repro.analysis.mergetree.blocks import NEIGHBOR_OFFSETS, BlockDecomposition
from repro.analysis.mergetree.boundary import BoundaryComponents
from repro.analysis.mergetree.union_find import UnionFind

#: Relabel map type: old rep gid -> (new rep gid, new rep value).
RelabelMap = dict[int, tuple[int, float]]


def join_components(
    parts: Sequence[BoundaryComponents],
    decomp: BlockDecomposition,
    region_blocks: Collection[int],
) -> tuple[BoundaryComponents, RelabelMap]:
    """Join sibling boundary components into one region.

    Args:
        parts: the children's boundary payloads.
        decomp: the shared block decomposition.
        region_blocks: block indices of the merged region (the join's
            subtree); used to decide which voxels remain on the outer
            boundary.

    Returns:
        ``(merged_boundary, relabel_map)``.
    """
    region = set(region_blocks)
    # Concatenate children; gids are disjoint across children.
    all_gids = np.concatenate([p.gids for p in parts]) if parts else np.empty(0, np.int64)
    comp_of_voxel: dict[int, int] = {}
    comp_val: dict[int, float] = {}
    uf = UnionFind()
    for p in parts:
        for c in range(p.n_components):
            rep = int(p.comp_gid[c])
            uf.add(rep)
            comp_val[rep] = float(p.comp_val[c])
        for g, ci in zip(p.gids, p.comp_idx):
            comp_of_voxel[int(g)] = int(p.comp_gid[ci])

    # Union across interfaces: any 6-adjacent pair of carried voxels.
    nx, ny, nz = decomp.shape
    for g in comp_of_voxel:
        x, y, z = decomp.coords(g)
        for dx, dy, dz in NEIGHBOR_OFFSETS:
            ux, uy, uz = x + dx, y + dy, z + dz
            if not (0 <= ux < nx and 0 <= uy < ny and 0 <= uz < nz):
                continue
            ug = (ux * ny + uy) * nz + uz
            other = comp_of_voxel.get(ug)
            if other is not None:
                uf.union(comp_of_voxel[g], other)

    # Elect the representative of each union class.
    classes: dict[int, list[int]] = {}
    for rep in comp_val:
        classes.setdefault(uf.find(rep), []).append(rep)
    new_rep_of: dict[int, int] = {}
    relabel: RelabelMap = {}
    for members in classes.values():
        best = max(members, key=lambda r: (comp_val[r], r))
        for r in members:
            new_rep_of[r] = best
            if r != best:
                relabel[r] = (best, comp_val[best])

    # Reduce to the merged region's outer boundary.
    keep_gids: list[int] = []
    keep_reps: list[int] = []
    for g in sorted(comp_of_voxel):
        x, y, z = decomp.coords(g)
        outer = False
        for dx, dy, dz in NEIGHBOR_OFFSETS:
            ux, uy, uz = x + dx, y + dy, z + dz
            if not (0 <= ux < nx and 0 <= uy < ny and 0 <= uz < nz):
                continue  # grid border: nothing beyond
            if decomp.block_of_point(ux, uy, uz) not in region:
                outer = True
                break
        if outer:
            keep_gids.append(g)
            keep_reps.append(new_rep_of[comp_of_voxel[g]])
    if keep_gids:
        gids_arr = np.array(keep_gids, dtype=np.int64)
        reps_arr = np.array(keep_reps, dtype=np.int64)
        comp_gid, comp_idx = np.unique(reps_arr, return_inverse=True)
        comp_vals = np.array(
            [comp_val[new_rep_of.get(int(g), int(g))] for g in comp_gid],
            dtype=np.float64,
        )
        merged = BoundaryComponents(
            gids=gids_arr,
            comp_idx=comp_idx.astype(np.int32),
            comp_gid=comp_gid,
            comp_val=comp_vals,
        )
    else:
        merged = BoundaryComponents.empty()
    del all_gids
    return merged, relabel


def compose_relabel(current: RelabelMap, update: RelabelMap) -> RelabelMap:
    """Compose an accumulated relabel map with a newer round's map.

    ``current`` maps original local reps to their latest global reps;
    ``update`` maps latest reps onward.  The result again maps original
    reps to the newest reps, and includes ``update``'s fresh entries so
    later compositions stay transitive.
    """
    out: RelabelMap = {}
    for old, (mid, mid_val) in current.items():
        new = update.get(mid)
        out[old] = new if new is not None else (mid, mid_val)
    for old, new in update.items():
        if old not in out:
            out[old] = new
    return out
