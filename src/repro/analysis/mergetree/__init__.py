"""Topological analysis: distributed segmented merge trees (Section V-A).

The first of the paper's three use cases.  Feature extraction on large
scalar fields: each feature is a connected component of the superlevel
set at a threshold (an "ignition region" in the HCCI combustion data),
computed with a parallel merge-tree dataflow — local trees per block,
k-way joins of boundary trees, broadcast of augmented trees, per-leaf
corrections, final segmentation (paper Fig. 5, after Landge et al. 2014).
"""

from repro.analysis.mergetree.blocks import NEIGHBOR_OFFSETS, BlockDecomposition
from repro.analysis.mergetree.boundary import BoundaryComponents, extract_boundary
from repro.analysis.mergetree.features import (
    FeatureStats,
    feature_statistics,
    feature_table,
)
from repro.analysis.mergetree.join import (
    RelabelMap,
    compose_relabel,
    join_components,
)
from repro.analysis.mergetree.placement import leaf_shard, mergetree_locality_map
from repro.analysis.mergetree.sequential import (
    JoinTree,
    block_join_tree,
    block_split_tree,
    reference_segmentation,
    segment_block,
)
from repro.analysis.mergetree.tracking import (
    FeatureMatch,
    FeatureTracker,
    Track,
    TrackEvent,
    match_features,
)
from repro.analysis.mergetree.tasks import (
    LocalTreeState,
    MergeTreeCostParams,
    MergeTreeWorkload,
)
from repro.analysis.mergetree.union_find import ArrayUnionFind, UnionFind

__all__ = [
    "ArrayUnionFind",
    "BlockDecomposition",
    "BoundaryComponents",
    "FeatureMatch",
    "FeatureStats",
    "FeatureTracker",
    "JoinTree",
    "LocalTreeState",
    "MergeTreeCostParams",
    "MergeTreeWorkload",
    "NEIGHBOR_OFFSETS",
    "RelabelMap",
    "Track",
    "TrackEvent",
    "UnionFind",
    "block_join_tree",
    "block_split_tree",
    "compose_relabel",
    "extract_boundary",
    "feature_statistics",
    "feature_table",
    "join_components",
    "leaf_shard",
    "match_features",
    "mergetree_locality_map",
    "reference_segmentation",
    "segment_block",
]
