"""BabelFlow wiring of the distributed merge tree (paper Section V-A).

:class:`MergeTreeWorkload` packages everything needed to run the
topological-analysis use case on any controller:

* the :class:`~repro.graphs.merge_tree.MergeTreeGraph` dataflow,
* the five callbacks (local compute, join, relay, correction,
  segmentation) implemented with the real algorithms of this package,
* the initial inputs (the decomposed scalar field),
* an analytic :class:`~repro.runtimes.costs.CostModel` calibrated by the
  *simulated* problem size, so benchmarks can model a 1024^3 run while
  carrying a smaller field through the (real, verified) code path, and
* result assembly + verification helpers.

The *payload scaling* deserves a note: when ``sim_shape`` exceeds the
actual field shape, wire sizes are inflated accordingly — volume-like
payloads (blocks, label volumes) by the voxel ratio, surface-like
payloads (boundary components) by its 2/3 power — so the network model
sees paper-scale messages while the data stays testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.mergetree.boundary import BoundaryComponents, extract_boundary
from repro.analysis.mergetree.join import RelabelMap, compose_relabel, join_components
from repro.analysis.mergetree.sequential import segment_block
from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.graphs.merge_tree import MergeTreeGraph
from repro.runtimes.controller import Controller
from repro.runtimes.costs import CallableCost, CostModel
from repro.runtimes.registry import coerce_controller


@dataclass(eq=False)
class LocalTreeState:
    """The per-leaf state traveling down the correction chain.

    Attributes:
        block: the leaf's block index.
        labels: dense int64 local segmentation (rep gid per voxel, -1
            below threshold).
        relabel: accumulated map from local reps to current global reps.
    """

    block: int
    labels: np.ndarray
    relabel: RelabelMap = dc_field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Wire-size estimate."""
        return int(self.labels.nbytes) + 24 * len(self.relabel)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocalTreeState):
            return NotImplemented
        return (
            self.block == other.block
            and np.array_equal(self.labels, other.labels)
            and self.relabel == other.relabel
        )


@dataclass(frozen=True)
class MergeTreeCostParams:
    """Analytic cost constants (seconds per element) for the workload.

    Calibrated so a 1024^3 run over 128 cores lands in the paper's
    O(10 s) regime; relative behaviour, not absolute agreement, is the
    goal.
    """

    touch_per_voxel: float = 4e-9
    sweep_per_voxel: float = 60e-9  # x log2(active voxels)
    join_per_boundary_voxel: float = 150e-9
    relay_per_byte: float = 0.15e-9
    correction_per_voxel: float = 6e-9
    segmentation_per_voxel: float = 8e-9


class MergeTreeWorkload:
    """Distributed segmented merge tree over a scalar field.

    Args:
        field: the global 3D scalar field (the real data to analyze).
        n_blocks: number of leaf blocks; must be a power of ``valence``.
        threshold: feature threshold (superlevel set).
        valence: reduction factor of the join tree (paper default 8).
        sim_shape: the problem size the *cost model* should pretend the
            field has (defaults to the actual shape).
        cost_params: analytic cost constants.
    """

    def __init__(
        self,
        field: np.ndarray,
        n_blocks: int,
        threshold: float,
        valence: int = 8,
        sim_shape: tuple[int, int, int] | None = None,
        cost_params: MergeTreeCostParams = MergeTreeCostParams(),
    ) -> None:
        if field.ndim != 3:
            raise ValueError("field must be 3D")
        self.field = np.asarray(field, dtype=np.float64)
        self.threshold = float(threshold)
        self.decomp = BlockDecomposition.regular(self.field.shape, n_blocks)
        if self.decomp.n_blocks != n_blocks:
            raise ValueError(
                f"decomposition produced {self.decomp.n_blocks} blocks, "
                f"expected {n_blocks}"
            )
        self.graph = MergeTreeGraph(n_blocks, valence)
        self.params = cost_params
        real_voxels = float(np.prod(self.field.shape))
        sim_voxels = (
            float(np.prod(sim_shape)) if sim_shape is not None else real_voxels
        )
        #: voxel-count inflation of the simulated problem vs the real one.
        self.volume_scale = sim_voxels / real_voxels
        #: surface-count inflation (boundary payloads).
        self.surface_scale = self.volume_scale ** (2.0 / 3.0)

    # ------------------------------------------------------------------ #
    # Controller plumbing
    # ------------------------------------------------------------------ #

    def register(self, controller: Controller) -> None:
        """Register all five callbacks on an initialized controller."""
        g = self.graph
        controller.register_callback(g.LOCAL, self.local_compute)
        controller.register_callback(g.JOIN, self.join)
        controller.register_callback(g.RELAY, self.relay)
        controller.register_callback(g.CORRECTION, self.correction)
        controller.register_callback(g.SEGMENTATION, self.segmentation)

    def initial_inputs(self) -> dict[TaskId, Payload]:
        """Block payloads keyed by the LOCAL task ids."""
        out: dict[TaskId, Payload] = {}
        for b in range(self.decomp.n_blocks):
            block = self.decomp.extract_block(self.field, b)
            out[self.graph.local_id(b)] = self._volume_payload(block)
        return out

    def run(self, controller: Controller | str, task_map=None, **kwargs):
        """Initialize, register, and run on ``controller``.

        Args:
            controller: a fresh (uninitialized) controller, or a
                :data:`repro.runtimes.REGISTRY` name (``"mpi"``, ...)
                with ``n_procs=`` and constructor kwargs passed through.
            task_map: optional task map forwarded to ``initialize`` (the
                MPI / Legion SPMD controllers default to a ModuloMap).
        """
        controller = coerce_controller(controller, **kwargs)
        controller.initialize(self.graph, task_map)
        self.register(controller)
        return controller.run(self.initial_inputs())

    # ------------------------------------------------------------------ #
    # Callbacks
    # ------------------------------------------------------------------ #

    def local_compute(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """LOCAL: build the leaf's tree; emit local state + boundary."""
        info = self.graph.describe(tid)
        b = info["leaf"]
        block = inputs[0].data
        bounds = self.decomp.block_bounds(b)
        gids = self.decomp.gids_array(bounds)
        labels = segment_block(block, gids, self.threshold)
        state = LocalTreeState(block=b, labels=labels)
        boundary = extract_boundary(self.decomp, b, labels, block, gids)
        out_state = Payload(state, nbytes=int(state.nbytes * self.volume_scale))
        out_boundary = self._surface_payload(boundary)
        if self.graph.join_rounds == 0:
            return [out_state]
        return [out_state, out_boundary]

    def join(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """JOIN: merge child boundaries; emit merged boundary + relabels."""
        info = self.graph.describe(tid)
        region = self.graph.subtree_leaves(info["round"], info["index"])
        parts = [p.data for p in inputs]
        merged, relabel = join_components(parts, self.decomp, region)
        return [self._surface_payload(merged), self._relabel_payload(relabel)]

    def relay(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """RELAY: forward the augmented tree unchanged."""
        return [inputs[0]]

    def correction(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """CORRECTION: fold a round's relabel map into the leaf state."""
        state: LocalTreeState = inputs[0].data
        update: RelabelMap = inputs[1].data
        new_state = LocalTreeState(
            block=state.block,
            labels=state.labels,
            relabel=compose_relabel(state.relabel, update),
        )
        return [
            Payload(new_state, nbytes=int(new_state.nbytes * self.volume_scale))
        ]

    def segmentation(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """SEGMENTATION: apply the final relabel map to the leaf labels."""
        state: LocalTreeState = inputs[0].data
        labels = state.labels
        if state.relabel:
            uniq, inverse = np.unique(labels, return_inverse=True)
            remapped = np.array(
                [
                    state.relabel.get(int(g), (int(g), 0.0))[0] if g >= 0 else -1
                    for g in uniq
                ],
                dtype=np.int64,
            )
            labels = remapped[inverse].reshape(labels.shape)
        return [
            Payload(
                (state.block, labels),
                nbytes=int(labels.nbytes * self.volume_scale),
            )
        ]

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def assemble(self, result) -> np.ndarray:
        """Stitch the segmentation outputs into a global label volume.

        Args:
            result: the :class:`~repro.runtimes.result.RunResult` of a
                run of this workload.

        Returns:
            int64 label volume of the field's shape (-1 below threshold).
        """
        out = np.full(self.field.shape, -1, dtype=np.int64)
        for b in range(self.decomp.n_blocks):
            tid = self.graph.segmentation_id(b)
            block_index, labels = result.output(tid).data
            if block_index != b:
                raise ValueError(
                    f"segmentation output mismatch: task {tid} returned "
                    f"block {block_index}, expected {b}"
                )
            (x0, x1), (y0, y1), (z0, z1) = self.decomp.block_bounds(b)
            out[x0:x1, y0:y1, z0:z1] = labels
        return out

    def feature_count(self, result) -> int:
        """Number of global features in a run's segmentation."""
        seg = self.assemble(result)
        return len(np.unique(seg[seg >= 0]))

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #

    def cost_model(self) -> CostModel:
        """Analytic per-callback cost model at the simulated scale."""
        g = self.graph
        p = self.params
        vol = self.volume_scale
        surf = self.surface_scale
        # A leaf's labels array never changes down the correction chain,
        # so its active-voxel count is computed once per block.
        active_cache: dict[int, float] = {}

        def cost(task, inputs):
            cb = task.callback
            if cb == g.LOCAL:
                block = inputs[0].data
                v = block.size * vol
                active = max(1.0, float(np.count_nonzero(block >= self.threshold)) * vol)
                return p.touch_per_voxel * v + p.sweep_per_voxel * active * np.log2(
                    active + 2.0
                )
            if cb == g.JOIN:
                nb = sum(pl.data.n_voxels for pl in inputs) * surf
                return p.join_per_boundary_voxel * max(1.0, nb)
            if cb == g.RELAY:
                return p.relay_per_byte * inputs[0].nbytes
            if cb == g.CORRECTION:
                state = inputs[0].data
                active = active_cache.get(state.block)
                if active is None:
                    active = float(np.count_nonzero(state.labels >= 0))
                    active_cache[state.block] = active
                return p.correction_per_voxel * max(1.0, active * vol)
            # segmentation
            state = inputs[0].data
            return p.segmentation_per_voxel * state.labels.size * vol

        return CallableCost(cost)

    # ------------------------------------------------------------------ #
    # Payload helpers
    # ------------------------------------------------------------------ #

    def _volume_payload(self, data) -> Payload:
        from repro.core.payload import estimate_nbytes

        return Payload(data, nbytes=int(estimate_nbytes(data) * self.volume_scale))

    def _surface_payload(self, boundary: BoundaryComponents) -> Payload:
        return Payload(
            boundary, nbytes=max(16, int(boundary.nbytes * self.surface_scale))
        )

    def _relabel_payload(self, relabel: RelabelMap) -> Payload:
        return Payload(relabel, nbytes=max(16, int(24 * len(relabel) * self.surface_scale)))
