"""Locality-aware task placement for the merge-tree dataflow.

The MPI and Legion-SPMD controllers take an explicit task map, and the
paper leaves its choice to the user.  The default ``ModuloMap`` balances
counts but scatters each leaf's correction chain across ranks, turning
every local-tree hop into a network message.  :func:`mergetree_locality_
map` instead co-locates each leaf's whole vertical slice — LOCAL, all its
CORRECTIONs, SEGMENTATION — on the rank owning the leaf, and places every
JOIN/RELAY on the rank of its first input, so the heavy local-tree
payloads never leave their rank and only boundary/relabel traffic crosses
the network.  The placement ablation benchmark quantifies the effect.
"""

from __future__ import annotations

from repro.core.ids import ShardId
from repro.core.taskmap import RangeMap
from repro.graphs.merge_tree import MergeTreeGraph
from repro.util.partition import split_range


def leaf_shard(leaf: int, n_leaves: int, shards: int) -> ShardId:
    """The rank owning leaf ``leaf`` under contiguous leaf blocking."""
    base, extra = divmod(n_leaves, shards)
    pivot = extra * (base + 1)
    if leaf < pivot:
        return leaf // (base + 1)
    if base == 0:
        return extra - 1 if extra else 0
    return extra + (leaf - pivot) // base


def mergetree_locality_map(graph: MergeTreeGraph, shards: int) -> RangeMap:
    """Build the locality-preserving task map for a merge-tree graph.

    Args:
        graph: the dataflow to place.
        shards: number of ranks.

    Placement rules:

    * leaves are blocked contiguously over the ranks (leaf locality
      follows block adjacency in the z-fastest decomposition order);
    * LOCAL, every CORRECTION, and SEGMENTATION of leaf ``i`` go to
      ``i``'s rank (the local-tree chain never crosses the network);
    * JOIN ``(r, j)`` goes to the rank of its subtree's first leaf
      (matching its first input's origin);
    * RELAY ``(r, l, m)`` goes to the rank of the first leaf it serves.
    """
    n = graph.leaves
    assignment: list[ShardId] = [0] * graph.size()
    for tid in graph.task_ids():
        info = graph.describe(tid)
        phase = info["phase"]
        if phase in ("local", "segmentation"):
            leaf = info["leaf"]
        elif phase == "correction":
            leaf = info["leaf"]
        elif phase == "join":
            leaf = graph.subtree_leaves(info["round"], info["index"])[0]
        else:  # relay (r, l, m) serves leaves m*k^l ..
            leaf = info["pos"] * graph.valence ** info["level"]
        assignment[tid] = leaf_shard(leaf, n, shards)
    return RangeMap(shards, assignment)
