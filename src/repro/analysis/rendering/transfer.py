"""Transfer functions: scalar value -> emitted color and opacity.

A :class:`TransferFunction` is a piecewise-linear lookup from normalized
scalar values to RGBA.  The default :func:`fire` map (black-red-yellow-
white with ramping opacity) is a classic for combustion data like the
paper's HCCI volume.
"""

from __future__ import annotations

import numpy as np


class TransferFunction:
    """Piecewise-linear RGBA transfer function.

    Args:
        points: scalar positions in [0, 1], ascending.
        colors: RGBA (values in [0, 1]) at each position; alpha is
            interpreted as opacity per unit sample step.
        vmin: scalar mapped to position 0.
        vmax: scalar mapped to position 1.
    """

    def __init__(
        self,
        points: np.ndarray,
        colors: np.ndarray,
        vmin: float = 0.0,
        vmax: float = 1.0,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        if points.ndim != 1 or colors.shape != (len(points), 4):
            raise ValueError("need N points and an (N, 4) color table")
        if len(points) < 2 or (np.diff(points) < 0).any():
            raise ValueError("points must be >= 2 and ascending")
        if vmax <= vmin:
            raise ValueError(f"vmax {vmax} must exceed vmin {vmin}")
        self._points = points
        self._colors = colors
        self.vmin = float(vmin)
        self.vmax = float(vmax)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Map an array of scalars to RGBA (shape ``values.shape + (4,)``)."""
        x = (np.asarray(values, dtype=np.float64) - self.vmin) / (
            self.vmax - self.vmin
        )
        x = np.clip(x, 0.0, 1.0)
        out = np.empty(x.shape + (4,), dtype=np.float32)
        for c in range(4):
            out[..., c] = np.interp(x, self._points, self._colors[:, c])
        return out

    def with_range(self, vmin: float, vmax: float) -> "TransferFunction":
        """Copy with a different scalar range."""
        return TransferFunction(self._points, self._colors, vmin, vmax)


def fire(vmin: float = 0.0, vmax: float = 1.0, opacity: float = 0.6) -> TransferFunction:
    """Black-body style map: transparent dark -> red -> yellow -> white."""
    points = np.array([0.0, 0.25, 0.55, 0.8, 1.0])
    colors = np.array(
        [
            [0.0, 0.0, 0.0, 0.0],
            [0.4, 0.0, 0.05, 0.05 * opacity],
            [0.9, 0.2, 0.05, 0.35 * opacity],
            [1.0, 0.8, 0.1, 0.7 * opacity],
            [1.0, 1.0, 1.0, 1.0 * opacity],
        ]
    )
    return TransferFunction(points, colors, vmin, vmax)


def grayscale(vmin: float = 0.0, vmax: float = 1.0, opacity: float = 0.5) -> TransferFunction:
    """Linear gray ramp with linear opacity (handy in tests)."""
    points = np.array([0.0, 1.0])
    colors = np.array([[0.0, 0.0, 0.0, 0.0], [1.0, 1.0, 1.0, opacity]])
    return TransferFunction(points, colors, vmin, vmax)
