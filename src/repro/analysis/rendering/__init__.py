"""Distributed rendering and image compositing (Section V-B).

The second of the paper's three use cases: an embarrassingly parallel
volume-rendering stage followed by image compositing, with both standard
compositing dataflows — a k-way reduction to a single image and binary
swap to per-task tiles — plus an IceT-model baseline for comparison.
"""

from repro.analysis.rendering.icet import icet_composite_time
from repro.analysis.rendering.image import (
    ImageFragment,
    composite_ordered,
    over,
    to_rgb8,
    write_ppm,
)
from repro.analysis.rendering.tasks import RenderingCostParams, RenderingWorkload
from repro.analysis.rendering.tiles import (
    full_region,
    power_layout,
    radix_region,
    region_shape,
    split_region,
    split_region_k,
    swap_region,
)
from repro.analysis.rendering.transfer import TransferFunction, fire, grayscale
from repro.analysis.rendering.volume import OrthoCamera, render_block, render_volume

__all__ = [
    "ImageFragment",
    "OrthoCamera",
    "RenderingCostParams",
    "RenderingWorkload",
    "TransferFunction",
    "composite_ordered",
    "fire",
    "full_region",
    "grayscale",
    "icet_composite_time",
    "over",
    "power_layout",
    "radix_region",
    "region_shape",
    "render_block",
    "render_volume",
    "split_region",
    "split_region_k",
    "swap_region",
    "to_rgb8",
    "write_ppm",
]
