"""From-scratch volume raycaster (the paper's VTK rendering stage).

Orthographic rays along a grid axis, front-to-back emission-absorption
accumulation with a :class:`~repro.analysis.rendering.transfer.
TransferFunction`, nearest-neighbor sampling on the pixel grid.  Each
block renders only its own sub-volume; block contributions along a ray
are disjoint depth segments, so compositing fragments with *over* equals
rendering the full ray — the associativity the compositing dataflows rely
on, and which the tests verify against a single full-volume render.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.rendering.image import ImageFragment
from repro.analysis.rendering.transfer import TransferFunction

_AXES = {"x": 0, "y": 1, "z": 2}


@dataclass(frozen=True)
class OrthoCamera:
    """Orthographic camera looking along a grid axis.

    Args:
        image_shape: output image (H, W) in pixels.
        axis: view axis, ``"x"``, ``"y"`` or ``"z"``; rays travel toward
            increasing coordinates along it.  The other two axes map to
            image rows and columns in ascending order.
    """

    image_shape: tuple[int, int]
    axis: str = "z"

    def __post_init__(self) -> None:
        if self.axis not in _AXES:
            raise ValueError(f"axis must be x, y or z, got {self.axis!r}")
        h, w = self.image_shape
        if h <= 0 or w <= 0:
            raise ValueError(f"invalid image shape {self.image_shape}")

    @property
    def view_axis(self) -> int:
        """The numeric view axis (0, 1 or 2)."""
        return _AXES[self.axis]

    def plane_axes(self) -> tuple[int, int]:
        """Grid axes mapped to image (rows, cols)."""
        others = [a for a in range(3) if a != self.view_axis]
        return others[0], others[1]

    def pixel_maps(
        self, grid_shape: tuple[int, int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-neighbor maps from image rows/cols to grid indices."""
        ra, ca = self.plane_axes()
        h, w = self.image_shape
        rows = np.minimum(
            (np.arange(h) * grid_shape[ra]) // h, grid_shape[ra] - 1
        ).astype(np.int64)
        cols = np.minimum(
            (np.arange(w) * grid_shape[ca]) // w, grid_shape[ca] - 1
        ).astype(np.int64)
        return rows, cols


def render_block(
    block: np.ndarray,
    bounds: tuple[tuple[int, int], ...],
    grid_shape: tuple[int, int, int],
    camera: OrthoCamera,
    tf: TransferFunction,
    step_scale: float = 1.0,
) -> ImageFragment:
    """Ray-march one block into a dense full-resolution fragment.

    Args:
        block: the block's scalar data.
        bounds: the block's per-axis global ``[lo, hi)`` bounds.
        grid_shape: the global grid shape.
        camera: view setup.
        tf: transfer function (alpha interpreted per unit step).
        step_scale: sample step in voxels along the ray (1.0 = every
            voxel slice).

    Returns:
        A fragment of the camera's full image size: the block's footprint
        carries its accumulated color, everything else is transparent
        with depth +inf; covered pixels get depth = the block's entry
        coordinate along the view axis (block depth segments along an
        axis-aligned ray never interleave, so a scalar entry depth per
        block is exact for ordering).
    """
    va = camera.view_axis
    ra, ca = camera.plane_axes()
    rows, cols = camera.pixel_maps(grid_shape)

    # Select the image rows/cols whose grid point falls inside the block.
    (rlo, rhi) = bounds[ra]
    (clo, chi) = bounds[ca]
    row_sel = np.nonzero((rows >= rlo) & (rows < rhi))[0]
    col_sel = np.nonzero((cols >= clo) & (cols < chi))[0]
    h, w = camera.image_shape
    fragment = ImageFragment.blank((h, w))
    if len(row_sel) == 0 or len(col_sel) == 0:
        return fragment

    # Reorder the block so indexing is [row_axis, col_axis, view_axis].
    perm = (ra, ca, va)
    if perm == (0, 1, 2):
        sub = block
    else:
        sub = np.ascontiguousarray(np.transpose(block, perm))
    r_idx = rows[row_sel] - rlo
    c_idx = cols[col_sel] - clo
    slab = sub[np.ix_(r_idx, c_idx)]  # (hb, wb, depth_extent)

    depth_extent = slab.shape[2]
    n_steps = max(1, int(round(depth_extent / step_scale)))
    sample_z = np.minimum(
        (np.arange(n_steps) * depth_extent) // n_steps, depth_extent - 1
    )
    color = np.zeros(slab.shape[:2] + (3,), dtype=np.float32)
    alpha = np.zeros(slab.shape[:2], dtype=np.float32)
    for z in sample_z:
        rgba = tf(slab[:, :, z])
        a = np.clip(rgba[..., 3] * step_scale, 0.0, 1.0)
        trans = 1.0 - alpha
        color += (trans * a)[..., None] * rgba[..., :3]
        alpha += trans * a

    entry = float(bounds[va][0])
    out_rgba = fragment.rgba
    out_depth = fragment.depth
    rgba_block = np.concatenate([color, alpha[..., None]], axis=2)
    out_rgba[np.ix_(row_sel, col_sel)] = rgba_block
    covered = alpha > 0.0
    block_depth = np.where(covered, np.float32(entry), np.float32(np.inf))
    out_depth[np.ix_(row_sel, col_sel)] = block_depth
    return fragment


def render_volume(
    field: np.ndarray,
    camera: OrthoCamera,
    tf: TransferFunction,
    step_scale: float = 1.0,
) -> ImageFragment:
    """Render a whole field in one pass (reference for the tests)."""
    bounds = tuple((0, s) for s in field.shape)
    return render_block(field, bounds, field.shape, camera, tf, step_scale)
