"""BabelFlow wiring of the rendering + compositing pipeline (Section V-B).

:class:`RenderingWorkload` runs the paper's two-stage visualization
pipeline on any controller:

* the **rendering stage** is embarrassingly parallel: every leaf
  ray-marches its block into a dense full-resolution fragment (the paper
  uses VTK's SmartVolumeMapper; here it is the from-scratch raycaster of
  :mod:`~repro.analysis.rendering.volume`);
* the **compositing stage** is a k-way :class:`~repro.graphs.reduction.
  Reduction` producing one final image at the root, a :class:`~repro.
  graphs.binary_swap.BinarySwap` leaving one tile on each of the ``n``
  final tasks (Figs. 10d/e/f), or — beyond the paper — a :class:`~repro.
  graphs.radixk.RadixK` generalizing binary swap to arbitrary fan-in.

Blocks are laid out with :func:`~repro.analysis.rendering.tiles.
power_layout` so every dataflow composites depth-consistently (see that
module); the camera must look along the z grid axis for the distributed
modes.

As with the merge-tree workload, a ``sim_shape``/``sim_image_shape`` pair
inflates wire sizes and analytic costs to paper scale while the real data
stays small enough to verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.mergetree.blocks import BlockDecomposition
from repro.analysis.rendering.image import ImageFragment, composite_ordered, over
from repro.analysis.rendering.tiles import (
    power_layout,
    radix_region,
    region_shape,
    split_region,
    split_region_k,
    swap_region,
)
from repro.analysis.rendering.transfer import TransferFunction, fire
from repro.analysis.rendering.volume import OrthoCamera, render_block, render_volume
from repro.core.errors import GraphError
from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.graphs.binary_swap import BinarySwap
from repro.graphs.radixk import RadixK
from repro.graphs.reduction import Reduction
from repro.runtimes.controller import Controller
from repro.runtimes.costs import CallableCost, CostModel
from repro.runtimes.registry import coerce_controller


@dataclass(frozen=True)
class RenderingCostParams:
    """Analytic cost constants for the rendering pipeline.

    ``render_per_sample`` is calibrated so a 1024^3 -> 2048^2 render over
    128 cores lands in the paper's ~100 s regime (Fig. 10a).
    """

    render_per_sample: float = 2.8e-6
    composite_per_pixel: float = 1.2e-9
    write_per_pixel: float = 0.5e-9


class RenderingWorkload:
    """Distributed rendering + compositing over a scalar field.

    Args:
        field: global 3D scalar field.
        n_blocks: number of render leaves (power of the compositing
            fan-in).
        image_shape: real output image (H, W).
        mode: ``"reduction"``, ``"binswap"`` or ``"radixk"``.
        valence: reduction fan-in / radix (ignored for binswap, which is
            2-way).
        tf: transfer function (default: fire map over the field range).
        sim_shape: pretended volume shape for costs/wire sizes.
        sim_image_shape: pretended image shape for costs/wire sizes.
        cost_params: analytic cost constants.
    """

    def __init__(
        self,
        field: np.ndarray,
        n_blocks: int,
        image_shape: tuple[int, int] = (64, 64),
        mode: str = "reduction",
        valence: int = 2,
        tf: TransferFunction | None = None,
        sim_shape: tuple[int, int, int] | None = None,
        sim_image_shape: tuple[int, int] | None = None,
        cost_params: RenderingCostParams = RenderingCostParams(),
    ) -> None:
        if field.ndim != 3:
            raise ValueError("field must be 3D")
        if mode not in ("reduction", "binswap", "radixk"):
            raise ValueError(
                f"mode must be 'reduction', 'binswap' or 'radixk', got {mode!r}"
            )
        self.field = np.asarray(field, dtype=np.float64)
        self.mode = mode
        self.camera = OrthoCamera(image_shape, axis="z")
        if tf is None:
            tf = fire(float(self.field.min()), float(self.field.max()) + 1e-12)
        self.tf = tf
        self.params = cost_params
        fanin = 2 if mode == "binswap" else valence
        layout = power_layout(n_blocks, fanin, self.field.shape, depth_axis=2)
        self.decomp = BlockDecomposition(self.field.shape, layout)
        self.graph: Reduction | BinarySwap | RadixK
        if mode == "reduction":
            self.graph = Reduction(n_blocks, valence)
        elif mode == "binswap":
            self.graph = BinarySwap(n_blocks)
        else:
            self.graph = RadixK(n_blocks, valence)
        self.n_blocks = n_blocks

        real_pixels = float(image_shape[0] * image_shape[1])
        sim_pixels = (
            float(sim_image_shape[0] * sim_image_shape[1])
            if sim_image_shape is not None
            else real_pixels
        )
        #: pixel-count inflation of the simulated image vs the real one.
        self.image_scale = sim_pixels / real_pixels
        self.sim_pixels = sim_pixels
        real_depth = float(self.field.shape[2])
        self.sim_depth = (
            float(sim_shape[2]) if sim_shape is not None else real_depth
        )

    # ------------------------------------------------------------------ #
    # Controller plumbing
    # ------------------------------------------------------------------ #

    def register(self, controller: Controller) -> None:
        """Register the callbacks for the configured mode."""
        g = self.graph
        if self.mode == "reduction":
            controller.register_callback(g.LEAF, self.render_leaf)
            controller.register_callback(g.REDUCE, self.composite_reduce)
            controller.register_callback(g.ROOT, self.composite_root)
        elif self.mode == "binswap":
            controller.register_callback(g.LEAF, self.binswap_leaf)
            controller.register_callback(g.COMPOSITE, self.binswap_composite)
            controller.register_callback(g.ROOT, self.binswap_root)
        else:
            controller.register_callback(g.LEAF, self.radix_leaf)
            controller.register_callback(g.COMPOSITE, self.radix_composite)
            controller.register_callback(g.ROOT, self.radix_root)

    def initial_inputs(self) -> dict[TaskId, Payload]:
        """Block payloads keyed by leaf task id (leaf i renders block i)."""
        out: dict[TaskId, Payload] = {}
        leaf_ids = self.graph.leaf_ids()
        for b in range(self.n_blocks):
            block = self.decomp.extract_block(self.field, b)
            out[leaf_ids[b]] = Payload(block)
        return out

    def run(self, controller: Controller | str, task_map=None, **kwargs):
        """Initialize, register, and run on ``controller`` (a registry
        name such as ``"mpi"`` also works, with ``n_procs=`` and
        constructor kwargs passed through)."""
        controller = coerce_controller(controller, **kwargs)
        controller.initialize(self.graph, task_map)
        self.register(controller)
        return controller.run(self.initial_inputs())

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def _render(self, block: np.ndarray, block_index: int) -> ImageFragment:
        bounds = self.decomp.block_bounds(block_index)
        return render_block(
            block, bounds, self.field.shape, self.camera, self.tf
        )

    def _fragment_payload(self, frag: ImageFragment) -> Payload:
        return Payload(frag, nbytes=max(16, int(frag.nbytes * self.image_scale)))

    # ------------------------------------------------------------------ #
    # Reduction-mode callbacks
    # ------------------------------------------------------------------ #

    def render_leaf(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """LEAF: render the local block into a dense fragment."""
        assert isinstance(self.graph, Reduction)
        b = self.graph.leaf_index(tid)
        return [self._fragment_payload(self._render(inputs[0].data, b))]

    def composite_reduce(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """REDUCE: composite the children's fragments."""
        frag = composite_ordered([p.data for p in inputs])
        return [self._fragment_payload(frag)]

    def composite_root(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """ROOT: final composite; also handles the degenerate 1-leaf
        graph where the root receives the raw block."""
        if len(inputs) == 1 and isinstance(inputs[0].data, np.ndarray):
            frag = self._render(inputs[0].data, 0)
        else:
            frag = composite_ordered([p.data for p in inputs])
        return [self._fragment_payload(frag)]

    # ------------------------------------------------------------------ #
    # Binary-swap callbacks
    # ------------------------------------------------------------------ #

    def _split_for_stage(
        self, frag: ImageFragment, stage: int, index: int
    ) -> tuple[ImageFragment, ImageFragment]:
        """Split a stage-``stage`` fragment into (kept, sent) halves."""
        assert isinstance(self.graph, BinarySwap)
        shape = self.camera.image_shape
        region = swap_region(shape, stage, index)
        first, second = split_region(region, stage)
        y0, _, x0, _ = region
        rel = lambda r: (r[0] - y0, r[1] - y0, r[2] - x0, r[3] - x0)
        f = frag.crop(*rel(first))
        s = frag.crop(*rel(second))
        if (index >> stage) & 1:
            return s, f
        return f, s

    def binswap_leaf(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """Stage 0: render, then perform the first swap split."""
        assert isinstance(self.graph, BinarySwap)
        i = self.graph.index(tid)
        frag = self._render(inputs[0].data, i)
        kept, sent = self._split_for_stage(frag, 0, i)
        return [self._fragment_payload(kept), self._fragment_payload(sent)]

    def binswap_composite(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """Stages 1..r-1: composite own+partner halves, split again."""
        assert isinstance(self.graph, BinarySwap)
        s, i = self.graph.stage(tid), self.graph.index(tid)
        frag = over(inputs[0].data, inputs[1].data)
        kept, sent = self._split_for_stage(frag, s, i)
        return [self._fragment_payload(kept), self._fragment_payload(sent)]

    def binswap_root(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """Final stage: composite into the owned tile; also handles the
        degenerate 1-task graph (render the single block)."""
        assert isinstance(self.graph, BinarySwap)
        i = self.graph.index(tid)
        if len(inputs) == 1 and isinstance(inputs[0].data, np.ndarray):
            tile = self._render(inputs[0].data, i)
        else:
            tile = over(inputs[0].data, inputs[1].data)
        return [Payload((i, tile), nbytes=max(16, int(tile.nbytes * self.image_scale)))]

    # ------------------------------------------------------------------ #
    # Radix-k callbacks
    # ------------------------------------------------------------------ #

    def _radix_strips(
        self, frag: ImageFragment, stage: int, index: int
    ) -> list[Payload]:
        """Split a stage-``stage`` fragment into the k strip payloads,
        in group-digit order (matching the graph's channel order)."""
        assert isinstance(self.graph, RadixK)
        k = self.graph.radix
        shape = self.camera.image_shape
        region = radix_region(shape, k, stage, index)
        y0, _, x0, _ = region
        strips = split_region_k(region, k, stage)
        return [
            self._fragment_payload(
                frag.crop(r[0] - y0, r[1] - y0, r[2] - x0, r[3] - x0)
            )
            for r in strips
        ]

    def radix_leaf(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """Stage 0: render, then direct-send the k strips."""
        assert isinstance(self.graph, RadixK)
        i = self.graph.index(tid)
        frag = self._render(inputs[0].data, i)
        return self._radix_strips(frag, 0, i)

    def radix_composite(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """Stages 1..m-1: composite the k received strips, split again."""
        assert isinstance(self.graph, RadixK)
        s, i = self.graph.stage(tid), self.graph.index(tid)
        frag = composite_ordered([p.data for p in inputs])
        return self._radix_strips(frag, s, i)

    def radix_root(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """Final stage: composite into the owned tile (or render the
        single block of the degenerate one-task graph)."""
        assert isinstance(self.graph, RadixK)
        i = self.graph.index(tid)
        if len(inputs) == 1 and isinstance(inputs[0].data, np.ndarray):
            tile = self._render(inputs[0].data, i)
        else:
            tile = composite_ordered([p.data for p in inputs])
        return [Payload((i, tile), nbytes=max(16, int(tile.nbytes * self.image_scale)))]

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def assemble(self, result) -> ImageFragment:
        """Final full image from a run (either mode)."""
        if self.mode == "reduction":
            assert isinstance(self.graph, Reduction)
            return result.output(self.graph.root_id).data
        shape = self.camera.image_shape
        out = ImageFragment.blank(shape)
        stages = self.graph.stages
        for tid in self.graph.root_ids():
            i, tile = result.output(tid).data
            if self.mode == "binswap":
                y0, y1, x0, x1 = swap_region(shape, stages, i)
            else:
                assert isinstance(self.graph, RadixK)
                y0, y1, x0, x1 = radix_region(shape, self.graph.radix, stages, i)
            out.rgba[y0:y1, x0:x1] = tile.rgba
            out.depth[y0:y1, x0:x1] = tile.depth
        return out

    def reference_image(self) -> ImageFragment:
        """Single-pass full-volume render (ground truth for tests)."""
        return render_volume(self.field, self.camera, self.tf)

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #

    def render_cost(self, block_index: int) -> float:
        """Analytic render cost of one block at the simulated scale.

        Rays = the block's share of the (simulated) image footprint;
        samples per ray = the block's depth extent at the simulated
        volume depth.
        """
        bounds = self.decomp.block_bounds(block_index)
        (x0, x1), (y0, y1), (z0, z1) = bounds
        nx, ny, _ = self.field.shape
        real_pixels = float(
            self.camera.image_shape[0] * self.camera.image_shape[1]
        )
        footprint_frac = ((x1 - x0) * (y1 - y0)) / float(nx * ny)
        rays = footprint_frac * real_pixels * self.image_scale
        depth_scale = self.sim_depth / float(self.field.shape[2])
        samples = (z1 - z0) * depth_scale
        return self.params.render_per_sample * rays * samples

    def cost_model(self) -> CostModel:
        """Analytic per-callback cost model at the simulated scale."""
        g = self.graph
        p = self.params
        real_pixels = float(
            self.camera.image_shape[0] * self.camera.image_shape[1]
        )
        px_scale = self.image_scale

        def render_cost(block: np.ndarray, block_index: int) -> float:
            return self.render_cost(block_index)

        def fragment_pixels(payload: Payload) -> float:
            data = payload.data
            frag = data[1] if isinstance(data, tuple) else data
            return frag.shape[0] * frag.shape[1] * px_scale

        def cost(task, inputs):
            cb = task.callback
            if self.mode == "reduction":
                assert isinstance(g, Reduction)
                if cb == g.LEAF:
                    return render_cost(inputs[0].data, g.leaf_index(task.id))
                pixels = sum(fragment_pixels(pl) for pl in inputs)
                extra = (
                    p.write_per_pixel * real_pixels * px_scale
                    if cb == g.ROOT
                    else 0.0
                )
                if cb == g.ROOT and isinstance(inputs[0].data, np.ndarray):
                    return render_cost(inputs[0].data, 0) + extra
                return p.composite_per_pixel * pixels + extra
            assert isinstance(g, (BinarySwap, RadixK))
            if cb == g.LEAF:
                return render_cost(inputs[0].data, g.index(task.id))
            if cb == g.ROOT and isinstance(inputs[0].data, np.ndarray):
                return render_cost(inputs[0].data, g.index(task.id))
            pixels = sum(fragment_pixels(pl) for pl in inputs)
            extra = (
                p.write_per_pixel * pixels if cb == g.ROOT else 0.0
            )
            return p.composite_per_pixel * pixels + extra

        return CallableCost(cost)
