"""Image fragments and compositing algebra.

An :class:`ImageFragment` is a dense RGBA image (premultiplied alpha)
with a per-pixel depth map.  The *over* operator composites two fragments
pixel-by-pixel, nearer fragment in front; it is exact whenever, along
each ray, the two fragments' contributions do not interleave in depth —
which the rendering workload guarantees by grouping blocks into
depth-contiguous subtrees (see :mod:`repro.analysis.rendering.tasks`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(eq=False)
class ImageFragment:
    """A dense RGBA+depth image.

    Attributes:
        rgba: float32 array (H, W, 4), *premultiplied* alpha.
        depth: float32 array (H, W); +inf where the fragment is empty.
    """

    rgba: np.ndarray
    depth: np.ndarray

    def __post_init__(self) -> None:
        if self.rgba.ndim != 3 or self.rgba.shape[2] != 4:
            raise ValueError(f"rgba must be (H, W, 4), got {self.rgba.shape}")
        if self.depth.shape != self.rgba.shape[:2]:
            raise ValueError(
                f"depth {self.depth.shape} does not match rgba "
                f"{self.rgba.shape[:2]}"
            )

    @property
    def shape(self) -> tuple[int, int]:
        """Image (H, W)."""
        return self.rgba.shape[:2]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ImageFragment):
            return NotImplemented
        return np.array_equal(self.rgba, other.rgba) and np.array_equal(
            self.depth, other.depth, equal_nan=True
        )

    @property
    def nbytes(self) -> int:
        """Wire-size estimate."""
        return int(self.rgba.nbytes + self.depth.nbytes)

    @classmethod
    def blank(cls, shape: tuple[int, int]) -> "ImageFragment":
        """Fully transparent fragment."""
        h, w = shape
        return cls(
            np.zeros((h, w, 4), dtype=np.float32),
            np.full((h, w), np.inf, dtype=np.float32),
        )

    def crop(self, y0: int, y1: int, x0: int, x1: int) -> "ImageFragment":
        """Copy of the sub-rectangle ``[y0:y1, x0:x1]``."""
        return ImageFragment(
            np.ascontiguousarray(self.rgba[y0:y1, x0:x1]),
            np.ascontiguousarray(self.depth[y0:y1, x0:x1]),
        )

    def copy(self) -> "ImageFragment":
        """Deep copy."""
        return ImageFragment(self.rgba.copy(), self.depth.copy())


def over(a: ImageFragment, b: ImageFragment) -> ImageFragment:
    """Composite two fragments, per-pixel nearer one in front.

    With premultiplied alpha the over operator is
    ``out = front + (1 - front_alpha) * back``; the result's depth is the
    per-pixel minimum (the nearer surface).
    """
    if a.shape != b.shape:
        raise ValueError(f"fragment shapes differ: {a.shape} vs {b.shape}")
    a_front = a.depth <= b.depth
    front_rgba = np.where(a_front[..., None], a.rgba, b.rgba)
    back_rgba = np.where(a_front[..., None], b.rgba, a.rgba)
    out = front_rgba + (1.0 - front_rgba[..., 3:4]) * back_rgba
    depth = np.minimum(a.depth, b.depth)
    return ImageFragment(out.astype(np.float32), depth.astype(np.float32))


def composite_ordered(fragments: list[ImageFragment]) -> ImageFragment:
    """Left fold of :func:`over` (reference implementation for tests)."""
    if not fragments:
        raise ValueError("nothing to composite")
    acc = fragments[0]
    for frag in fragments[1:]:
        acc = over(acc, frag)
    return acc


def to_rgb8(
    fragment: ImageFragment, background: tuple[float, float, float] = (0.0, 0.0, 0.0)
) -> np.ndarray:
    """Flatten onto an opaque background; returns uint8 (H, W, 3)."""
    rgba = fragment.rgba
    bg = np.asarray(background, dtype=np.float32)
    rgb = rgba[..., :3] + (1.0 - rgba[..., 3:4]) * bg
    return (np.clip(rgb, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def write_ppm(path: str, rgb8: np.ndarray) -> None:
    """Write an uint8 (H, W, 3) image as binary PPM (no deps needed)."""
    if rgb8.ndim != 3 or rgb8.shape[2] != 3 or rgb8.dtype != np.uint8:
        raise ValueError("write_ppm expects uint8 (H, W, 3)")
    h, w = rgb8.shape[:2]
    with open(path, "wb") as fh:
        fh.write(f"P6\n{w} {h}\n255\n".encode("ascii"))
        fh.write(rgb8.tobytes())
