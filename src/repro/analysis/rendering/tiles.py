"""Tile algebra for binary-swap compositing and depth-safe block layouts.

Binary swap halves each task's image extent every stage, alternating the
split axis; after ``r`` stages task ``i`` owns the tile selected by bits
``0..r-1`` of ``i``.  Both partners derive the same rectangles from this
module, so no extents ever travel on the wire.

:func:`power_layout` builds block layouts whose z-extent (the view/depth
axis) is a power of the compositing fan-in, which guarantees every
compositing subtree covers either a depth-contiguous run of blocks within
one image footprint or a union of complete depth columns with disjoint
footprints — the precondition for per-pixel *over* compositing to be
exact in any reduction order the tree implies.
"""

from __future__ import annotations

from repro.core.errors import GraphError

#: A tile rectangle: (y0, y1, x0, x1), half-open.
Region = tuple[int, int, int, int]


def full_region(shape: tuple[int, int]) -> Region:
    """The whole image as a region."""
    h, w = shape
    return (0, h, 0, w)


def split_region(region: Region, stage: int) -> tuple[Region, Region]:
    """Split a region in half for a given swap stage.

    Even stages split rows, odd stages split columns, so repeated halving
    keeps tiles close to square.  With odd extents the first half gets
    the extra row/column.
    """
    y0, y1, x0, x1 = region
    if stage % 2 == 0:
        ym = y0 + (y1 - y0 + 1) // 2
        return (y0, ym, x0, x1), (ym, y1, x0, x1)
    xm = x0 + (x1 - x0 + 1) // 2
    return (y0, y1, x0, xm), (y0, y1, xm, x1)


def swap_region(shape: tuple[int, int], stage: int, index: int) -> Region:
    """The tile task ``(stage, index)`` owns *entering* the stage.

    Stage 0 owns the full image; afterwards bit ``s`` of ``index``
    selects the half kept at stage ``s``.
    """
    region = full_region(shape)
    for s in range(stage):
        first, second = split_region(region, s)
        region = second if (index >> s) & 1 else first
    return region


def region_shape(region: Region) -> tuple[int, int]:
    """(height, width) of a region."""
    y0, y1, x0, x1 = region
    return (y1 - y0, x1 - x0)


def split_region_k(region: Region, k: int, stage: int) -> list[Region]:
    """Split a region into ``k`` near-equal strips for a radix-k stage.

    Even stages split rows, odd stages split columns (as
    :func:`split_region`, which equals the ``k == 2`` case).  Strip sizes
    differ by at most one, earlier strips larger.
    """
    if k < 2:
        raise GraphError(f"radix must be at least 2, got {k}")
    y0, y1, x0, x1 = region
    out: list[Region] = []
    if stage % 2 == 0:
        n = y1 - y0
        for lo, hi in _chunks(n, k):
            out.append((y0 + lo, y0 + hi, x0, x1))
    else:
        n = x1 - x0
        for lo, hi in _chunks(n, k):
            out.append((y0, y1, x0 + lo, x0 + hi))
    return out


def _chunks(total: int, parts: int):
    from repro.util.partition import even_chunks

    return even_chunks(total, parts)


def radix_region(
    shape: tuple[int, int], k: int, stage: int, index: int
) -> Region:
    """The tile task ``(stage, index)`` of a radix-k dataflow owns
    *entering* the stage: digit ``s`` of ``index`` (base ``k``) selects
    the strip kept at round ``s``."""
    region = full_region(shape)
    for s in range(stage):
        digit = (index // k**s) % k
        region = split_region_k(region, k, s)[digit]
    return region


def power_layout(
    n: int, k: int, shape: tuple[int, int, int], depth_axis: int = 2
) -> tuple[int, int, int]:
    """Factor ``n = k**d`` blocks into a depth-safe ``(bx, by, bz)`` layout.

    Exponents are assigned to the depth axis first (as far as the grid
    extent allows), then to the remaining axes round-robin, so that the
    depth extent is ``k**m`` for the largest feasible ``m`` — see the
    module docstring for why.

    Raises:
        GraphError: if ``n`` is not a power of ``k`` or the grid is too
            small to host the layout.
    """
    from repro.graphs.reduction import exact_log

    d = exact_log(n, k) if n > 1 else 0
    exps = [0, 0, 0]
    axes_order = [depth_axis] + [a for a in range(3) if a != depth_axis]
    remaining = d
    # Fill the depth axis as much as its extent allows.
    while remaining > 0 and k ** (exps[depth_axis] + 1) <= shape[depth_axis]:
        exps[depth_axis] += 1
        remaining -= 1
    # Distribute the rest round-robin over the other axes.
    others = axes_order[1:]
    i = 0
    guard = 0
    while remaining > 0:
        a = others[i % 2]
        if k ** (exps[a] + 1) <= shape[a]:
            exps[a] += 1
            remaining -= 1
            guard = 0
        else:
            guard += 1
            if guard >= 2:
                raise GraphError(
                    f"grid {shape} too small for {n} blocks with valence {k}"
                )
        i += 1
    return (k ** exps[0], k ** exps[1], k ** exps[2])
