"""IceT-model baseline for the compositing comparisons.

IceT (Moreland et al. 2011) is the hand-optimized, sort-last compositing
library the paper compares against.  Matching the paper's setup, the
model disables interlacing and background filtering (dense images all the
way) and captures what a custom implementation saves over a generic task
abstraction: no payload de-/serialization, no thread hand-off, no
per-task runtime overhead — just compute at memory bandwidth plus raw
network transfers.

The model composites with binary swap over ``2**r`` ranks (IceT's core
strategy for power-of-two counts); per stage every rank transfers half of
its current image extent and composites it, so with per-pixel work ``c``
and the machine's postal network parameters the stage times form a
geometric series.  The same model is used as the IceT curve in both the
reduction and the binary-swap figures, as in the paper.
"""

from __future__ import annotations

from repro.sim.machine import MachineSpec

#: Bytes per pixel on the wire (RGBA float32 + float32 depth).
PIXEL_BYTES = 20

#: Compositing cost per pixel (seconds): a blend is a handful of memory
#: ops; IceT runs at effective memory bandwidth.
COMPOSITE_PER_PIXEL = 0.8e-9


def icet_composite_time(
    n_procs: int,
    image_pixels: int,
    machine: MachineSpec,
    composite_per_pixel: float = COMPOSITE_PER_PIXEL,
    pixel_bytes: int = PIXEL_BYTES,
) -> float:
    """Estimated IceT compositing time for one frame.

    Args:
        n_procs: number of ranks holding one rendered image each (must be
            a power of two, as in the paper's runs).
        image_pixels: pixels of the full output image.
        machine: postal network parameters.
        composite_per_pixel: per-pixel blend cost in seconds.
        pixel_bytes: wire bytes per pixel.

    Returns:
        Seconds for the compositing stage.
    """
    if n_procs <= 0 or (n_procs & (n_procs - 1)):
        raise ValueError(f"IceT model expects a power-of-two rank count, got {n_procs}")
    stages = n_procs.bit_length() - 1
    total = 0.0
    pixels = float(image_pixels)
    for _ in range(stages):
        half = pixels / 2.0
        nbytes = half * pixel_bytes
        transfer = machine.inter_latency + nbytes / machine.inter_bandwidth
        blend = half * composite_per_pixel / machine.core_speed
        total += transfer + blend
        pixels = half
    # Final gather of the n tiles to the root (one tile per rank).
    tile_bytes = (image_pixels / max(1, n_procs)) * pixel_bytes
    total += machine.inter_latency + tile_bytes / machine.inter_bandwidth
    return total
