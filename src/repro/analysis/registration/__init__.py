"""Volume registration of tiled acquisitions (Section V-C).

The third of the paper's three use cases: align a grid of overlapping 3D
stacks by correlating their overlap regions (a 2D neighbor dataflow over
Z slabs) and solving for global positions.
"""

from repro.analysis.registration.correlate import (
    OffsetEstimate,
    consensus_offset,
    ncc_shift,
    phase_correlation,
)
from repro.analysis.registration.tasks import (
    RegistrationCostParams,
    RegistrationWorkload,
)
from repro.analysis.registration.volumes import SyntheticVolumeGrid, VolumeGridSpec

__all__ = [
    "OffsetEstimate",
    "RegistrationCostParams",
    "RegistrationWorkload",
    "SyntheticVolumeGrid",
    "VolumeGridSpec",
    "consensus_offset",
    "ncc_shift",
    "phase_correlation",
]
