"""BabelFlow wiring of the volume-registration dataflow (Section V-C).

:class:`RegistrationWorkload` runs the paper's Fig. 8 dataflow on any
controller:

* EXTRACT — per (volume, Z-slab): cut out the overlap window facing each
  grid neighbor and send it to that edge's correlation task;
* CORRELATE — per (edge, slab): phase-correlate the two facing windows
  and de-bias the peak into the pairwise jitter measurement;
* EVALUATE ("sort/evaluate") — per edge: consensus over the slabs;
* PLACE — solve the global least-squares placement of all volumes from
  the pairwise measurements (anchored at volume 0).

The workload knows the ground truth (the synthetic grid's jitter), so
:meth:`RegistrationWorkload.verify` can assert exact recovery — something
the paper could not do with real microscopy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.registration.correlate import (
    OffsetEstimate,
    consensus_offset,
    ncc_shift,
)
from repro.analysis.registration.volumes import SyntheticVolumeGrid
from repro.core.ids import TaskId
from repro.core.payload import Payload
from repro.graphs.neighbor import NeighborRegistration
from repro.runtimes.controller import Controller
from repro.runtimes.costs import CallableCost, CostModel
from repro.runtimes.registry import coerce_controller


@dataclass(frozen=True)
class RegistrationCostParams:
    """Analytic cost constants for the registration pipeline.

    ``fft_per_voxel`` multiplies ``N log2 N`` over the correlation window
    (two forward FFTs, one inverse, the peak scan); extraction is a copy
    at memory bandwidth.
    """

    extract_per_voxel: float = 1.0e-9
    fft_per_voxel: float = 18e-9
    evaluate_cost: float = 2e-5
    place_per_edge: float = 1e-5


class RegistrationWorkload:
    """Distributed registration of a synthetic volume grid.

    Args:
        grid: the synthetic acquisition to register.
        slabs: number of Z slabs per volume (>= 1; the paper slabs the
            1024-deep stacks for memory reasons).
        sim_vol_shape: pretended per-volume shape for costs/wire sizes.
        cost_params: analytic cost constants.
    """

    def __init__(
        self,
        grid: SyntheticVolumeGrid,
        slabs: int = 1,
        sim_vol_shape: tuple[int, int, int] | None = None,
        cost_params: RegistrationCostParams = RegistrationCostParams(),
    ) -> None:
        self.grid = grid
        spec = grid.spec
        vz = spec.vol_shape[2]
        if not 1 <= slabs <= vz:
            raise ValueError(f"slabs must be in [1, {vz}], got {slabs}")
        self.slabs = slabs
        self.graph = NeighborRegistration(spec.gx, spec.gy, slabs)
        self.params = cost_params
        real_voxels = float(np.prod(spec.vol_shape))
        sim_voxels = (
            float(np.prod(sim_vol_shape))
            if sim_vol_shape is not None
            else real_voxels
        )
        #: voxel-count inflation of the simulated volumes.
        self.volume_scale = sim_voxels / real_voxels
        #: overlap window in voxels, per axis (covers the jitter range).
        self.window_x = spec.overlap_x + 2 * spec.max_jitter
        self.window_y = spec.overlap_y + 2 * spec.max_jitter
        self.max_shift = 3 * spec.max_jitter + 1

    # ------------------------------------------------------------------ #
    # Controller plumbing
    # ------------------------------------------------------------------ #

    def register(self, controller: Controller) -> None:
        """Register the four callbacks on an initialized controller."""
        g = self.graph
        controller.register_callback(g.EXTRACT, self.extract)
        controller.register_callback(g.CORRELATE, self.correlate)
        controller.register_callback(g.EVALUATE, self.evaluate)
        controller.register_callback(g.PLACE, self.place)

    def initial_inputs(self) -> dict[TaskId, Payload]:
        """Per-(volume, slab) payloads keyed by EXTRACT task ids."""
        out: dict[TaskId, Payload] = {}
        for cell in range(self.grid.n_volumes):
            vol = self.grid.volume(cell)
            for s in range(self.slabs):
                zlo, zhi = self._slab_range(s)
                slab = np.ascontiguousarray(vol[:, :, zlo:zhi])
                out[self.graph.extract_id(cell, s)] = self._scaled(slab)
        return out

    def run(self, controller: Controller | str, task_map=None, **kwargs):
        """Initialize, register, and run on ``controller`` (a registry
        name such as ``"mpi"`` also works, with ``n_procs=`` and
        constructor kwargs passed through)."""
        controller = coerce_controller(controller, **kwargs)
        controller.initialize(self.graph, task_map)
        self.register(controller)
        return controller.run(self.initial_inputs())

    # ------------------------------------------------------------------ #
    # Callbacks
    # ------------------------------------------------------------------ #

    def extract(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """EXTRACT: cut the overlap window facing each incident edge."""
        info = self.graph.describe(tid)
        cell = info["cell"]
        slab = inputs[0].data
        outputs: list[Payload] = []
        for e in self.graph.incident_edges(cell):
            a, b = self.graph.edges[e]
            axis = self._edge_axis(a, b)
            w = self.window_x if axis == 0 else self.window_y
            if cell == a:  # lower cell: send the trailing window
                crop = slab[-w:, :, :] if axis == 0 else slab[:, -w:, :]
            else:  # higher cell: send the leading window
                crop = slab[:w, :, :] if axis == 0 else slab[:, :w, :]
            outputs.append(self._scaled(np.ascontiguousarray(crop)))
        return outputs

    def correlate(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """CORRELATE: phase-correlate the two windows, de-bias to jitter."""
        info = self.graph.describe(tid)
        a, b = self.graph.edges[info["edge"]]
        axis = self._edge_axis(a, b)
        crop_a, crop_b = inputs[0].data, inputs[1].data
        est = ncc_shift(crop_a, crop_b, max_shift=self.max_shift)
        spec = self.grid.spec
        # Along the edge axis the windows are offset by (window - overlap)
        # when the jitter is zero; remove that bias.
        bias = (
            self.window_x - spec.overlap_x
            if axis == 0
            else self.window_y - spec.overlap_y
        )
        shift = list(est.shift)
        shift[axis] -= bias
        return [
            Payload(
                OffsetEstimate(shift=tuple(shift), confidence=est.confidence),
                nbytes=64,
            )
        ]

    def evaluate(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """EVALUATE: per-edge consensus across the slabs."""
        est = consensus_offset([p.data for p in inputs])
        return [Payload(est, nbytes=64)]

    def place(self, inputs: list[Payload], tid: TaskId) -> list[Payload]:
        """PLACE: least-squares global placement anchored at volume 0."""
        edges = self.graph.edges
        n = self.grid.n_volumes
        estimates: list[OffsetEstimate] = [p.data for p in inputs]
        offsets = np.zeros((n, 3), dtype=np.float64)
        # One least-squares solve per axis: rows are edge constraints
        # o_b - o_a = shift, plus the anchor row o_0 = 0.
        rows = len(edges) + 1
        a_mat = np.zeros((rows, n))
        for r, (a, b) in enumerate(edges):
            a_mat[r, a] = -1.0
            a_mat[r, b] = 1.0
        a_mat[len(edges), 0] = 1.0
        for axis in range(3):
            rhs = np.zeros(rows)
            for r, est in enumerate(estimates):
                rhs[r] = est.shift[axis]
            sol, *_ = np.linalg.lstsq(a_mat, rhs, rcond=None)
            offsets[:, axis] = sol - sol[0]
        return [Payload(np.rint(offsets).astype(np.int64))]

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def recovered_offsets(self, result) -> np.ndarray:
        """The per-volume offsets a run recovered ((n, 3) int array)."""
        return result.output(self.graph.place_id).data

    def verify(self, result) -> bool:
        """True when the run recovered the ground-truth jitter exactly."""
        return bool(
            np.array_equal(self.recovered_offsets(result), self.grid.true_offsets)
        )

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #

    def cost_model(self) -> CostModel:
        """Analytic per-callback cost model at the simulated scale."""
        g = self.graph
        p = self.params
        scale = self.volume_scale

        def cost(task, inputs):
            cb = task.callback
            if cb == g.EXTRACT:
                v = inputs[0].data.size * scale
                return p.extract_per_voxel * v
            if cb == g.CORRELATE:
                v = max(2.0, inputs[0].data.size * scale)
                return p.fft_per_voxel * v * np.log2(v)
            if cb == g.EVALUATE:
                return p.evaluate_cost
            return p.place_per_edge * len(g.edges)

        return CallableCost(cost)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _edge_axis(self, a: int, b: int) -> int:
        """0 when the edge runs along X, 1 along Y."""
        ax, ay = self.graph.cell_coords(a)
        bx, _ = self.graph.cell_coords(b)
        return 0 if bx == ax + 1 else 1

    def _slab_range(self, s: int) -> tuple[int, int]:
        from repro.util.partition import split_range

        return split_range(self.grid.spec.vol_shape[2], self.slabs, s)

    def _scaled(self, arr: np.ndarray) -> Payload:
        return Payload(arr, nbytes=max(16, int(arr.nbytes * self.volume_scale)))
