"""Offset estimation between overlapping sub-volumes.

Phase correlation: the normalized cross-power spectrum of two images that
differ by a pure translation is a complex exponential whose inverse FFT
is a delta at the shift.  It is robust to the global intensity changes
between microscope tiles and costs ``O(N log N)`` — this is the
``correlation`` task of the paper's Fig. 8 dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OffsetEstimate:
    """Result of one pairwise correlation.

    Attributes:
        shift: the integer shift (3-vector) such that
            ``b(x) ~= a(x + shift)``.
        confidence: peak height of the phase-correlation surface in
            [0, 1]; higher is a sharper, more trustworthy match.
    """

    shift: tuple[int, int, int]
    confidence: float


def phase_correlation(
    a: np.ndarray, b: np.ndarray, max_shift: int | None = None
) -> OffsetEstimate:
    """Estimate the translation between two equal-shape volumes.

    Args:
        a: reference volume.
        b: moving volume; content should satisfy ``b(x) = a(x + t)``.
        max_shift: optional bound on |t| per axis; the peak search is
            restricted to that window (wrap-around aware), which guards
            against spurious far-field peaks in noisy overlaps.

    Returns:
        The estimated integer shift ``t`` and its confidence.

    Raises:
        ValueError: on shape mismatch or empty input.
    """
    if a.shape != b.shape:
        raise ValueError(f"shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("empty volumes")
    da = a - a.mean()
    db = b - b.mean()
    fa = np.fft.rfftn(da)
    fb = np.fft.rfftn(db)
    # Plain circular cross-correlation.  Full spectral whitening ("true"
    # phase correlation) is catastrophic on smooth microscopy-like
    # content: it equalizes the (information-free) high frequencies with
    # the structure, so matched filtering wins here.
    surface = np.fft.irfftn(fa * np.conj(fb), s=a.shape)
    norm = float(np.sqrt((da * da).sum() * (db * db).sum()))
    surface = surface / (norm + 1e-300)

    if max_shift is not None:
        mask = np.zeros(a.shape, dtype=bool)
        w = int(max_shift)
        for axis, n in enumerate(a.shape):
            idx = np.arange(n)
            ok = (idx <= w) | (idx >= n - w)
            shape = [1, 1, 1]
            shape[axis] = n
            mask = mask | ~ok.reshape(shape)
        surface = np.where(mask, -np.inf, surface)

    peak = np.unravel_index(int(np.argmax(surface)), surface.shape)
    shift = []
    for p, n in zip(peak, a.shape):
        shift.append(int(p if p <= n // 2 else p - n))
    conf = float(np.clip(surface[peak], 0.0, 1.0))
    return OffsetEstimate(shift=tuple(shift), confidence=conf)


def ncc_shift(a: np.ndarray, b: np.ndarray, max_shift: int) -> OffsetEstimate:
    """Exact normalized cross-correlation search over a small shift window.

    Evaluates, for every integer shift ``t`` with ``|t_i| <= max_shift``,
    the normalized correlation coefficient between the *valid* (non-
    wrapping) overlap of ``a`` shifted by ``t`` against ``b``, and returns
    the best shift: ``b(x) ~= a(x + t)``.

    Unlike FFT-based circular correlation this has no wrap-around bias,
    which matters for the small, smooth overlap windows of microscopy
    tiles; the search volume is tiny (``(2*max_shift+1)**3`` shifts), so
    the exact method is also fast.

    Raises:
        ValueError: on shape mismatch, or when ``max_shift`` leaves no
            valid overlap.
    """
    if a.shape != b.shape:
        raise ValueError(f"shapes differ: {a.shape} vs {b.shape}")
    w = int(max_shift)
    if w < 0 or all(n <= w for n in a.shape):
        raise ValueError(
            f"max_shift {max_shift} too large for window shape {a.shape}"
        )
    best = OffsetEstimate(shift=(0, 0, 0), confidence=-2.0)
    # Clamp the window per axis so thin windows (e.g. shallow Z slabs)
    # still search their feasible range.
    per_axis = [min(w, n - 1) for n in a.shape]
    for tx in range(-per_axis[0], per_axis[0] + 1):
        for ty in range(-per_axis[1], per_axis[1] + 1):
            for tz in range(-per_axis[2], per_axis[2] + 1):
                sa, sb = [], []
                ok = True
                for t, n in zip((tx, ty, tz), a.shape):
                    lo, hi = max(0, -t), n - max(0, t)
                    if hi <= lo:
                        ok = False
                        break
                    sa.append(slice(lo + t, hi + t))
                    sb.append(slice(lo, hi))
                if not ok:
                    continue
                va = a[tuple(sa)]
                vb = b[tuple(sb)]
                da = va - va.mean()
                db = vb - vb.mean()
                denom = float(np.sqrt((da * da).sum() * (db * db).sum()))
                if denom <= 0:
                    continue
                ncc = float((da * db).sum() / denom)
                if ncc > best.confidence:
                    best = OffsetEstimate(shift=(tx, ty, tz), confidence=ncc)
    if best.confidence < -1.5:
        # Degenerate (constant) windows carry no signal: report the null
        # shift with zero confidence so the consensus step downweights it.
        return OffsetEstimate(shift=(0, 0, 0), confidence=0.0)
    return OffsetEstimate(
        shift=best.shift, confidence=float(np.clip(best.confidence, 0.0, 1.0))
    )


def consensus_offset(estimates: list[OffsetEstimate]) -> OffsetEstimate:
    """Combine per-slab estimates of the same pair (the ``sort/evaluate``
    step of the dataflow): confidence-weighted per-axis median.

    Raises:
        ValueError: on an empty list.
    """
    if not estimates:
        raise ValueError("no estimates to combine")
    shifts = np.array([e.shift for e in estimates], dtype=np.float64)
    weights = np.array([max(e.confidence, 1e-9) for e in estimates])
    out = []
    order_w = weights / weights.sum()
    for axis in range(shifts.shape[1]):
        vals = shifts[:, axis]
        idx = np.argsort(vals)
        cum = np.cumsum(order_w[idx])
        pos = int(np.searchsorted(cum, 0.5))
        out.append(int(vals[idx[min(pos, len(vals) - 1)]]))
    return OffsetEstimate(shift=tuple(out), confidence=float(weights.max()))
