"""Synthetic overlapping volume grids (the microscopy stand-in).

The paper registers 25 laser-scan volumes of a primate brain arranged on
a 5x5 grid with 15% overlap.  That data is unobtainable, so this module
fabricates the equivalent: one smooth global "specimen" field is sampled
into per-volume stacks whose *true* positions deviate from their nominal
grid positions by a small unknown jitter — exactly the quantity the
registration dataflow must recover.  Unlike the paper we therefore have
ground truth, and the tests assert the recovered offsets match it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class VolumeGridSpec:
    """Parameters of a synthetic volume grid.

    Attributes:
        gx: volumes along X.
        gy: volumes along Y.
        vol_shape: per-volume voxel shape ``(vx, vy, vz)``.
        overlap: nominal overlap fraction between adjacent volumes
            (paper: 0.15).
        max_jitter: maximum |true - nominal| position error per axis, in
            voxels.
        seed: RNG seed.
        smoothness: gaussian sigma of the specimen structure in voxels.
        noise: additive per-volume acquisition noise (std, relative to
            unit signal).
    """

    gx: int = 5
    gy: int = 5
    vol_shape: tuple[int, int, int] = (32, 32, 32)
    overlap: float = 0.15
    max_jitter: int = 2
    seed: int = 0
    smoothness: float = 3.0
    noise: float = 0.01

    def __post_init__(self) -> None:
        if self.gx < 1 or self.gy < 1 or self.gx * self.gy < 2:
            raise ValueError("grid must contain at least two volumes")
        if not 0.0 < self.overlap < 0.5:
            raise ValueError("overlap fraction must be in (0, 0.5)")
        if self.max_jitter < 0:
            raise ValueError("max_jitter must be non-negative")
        vx, vy, _ = self.vol_shape
        if self.overlap_x <= 2 * self.max_jitter or self.overlap_y <= 2 * self.max_jitter:
            raise ValueError(
                "overlap region too small for the configured jitter"
            )

    @property
    def overlap_x(self) -> int:
        """Nominal overlap in voxels along X."""
        return max(1, int(round(self.vol_shape[0] * self.overlap)))

    @property
    def overlap_y(self) -> int:
        """Nominal overlap in voxels along Y."""
        return max(1, int(round(self.vol_shape[1] * self.overlap)))

    @property
    def pitch(self) -> tuple[int, int]:
        """Nominal grid pitch (voxels between neighbor volume origins)."""
        return (
            self.vol_shape[0] - self.overlap_x,
            self.vol_shape[1] - self.overlap_y,
        )

    def nominal_position(self, cx: int, cy: int) -> tuple[int, int, int]:
        """Nominal origin of grid cell ``(cx, cy)`` in specimen space."""
        px, py = self.pitch
        m = self.max_jitter
        return (m + cx * px, m + cy * py, 0)


class SyntheticVolumeGrid:
    """A fabricated acquisition: volumes + their (hidden) true positions.

    Attributes:
        spec: the generation parameters.
        true_offsets: int array (gx*gy, 3); the per-volume jitter
            ``true - nominal`` the registration must recover (cell 0 is
            pinned to zero so the solution is unique).
        volumes: list of float64 arrays of ``spec.vol_shape``.
    """

    def __init__(self, spec: VolumeGridSpec) -> None:
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        gx, gy = spec.gx, spec.gy
        vx, vy, vz = spec.vol_shape
        px, py = spec.pitch
        m = spec.max_jitter
        specimen_shape = (
            2 * m + (gx - 1) * px + vx,
            2 * m + (gy - 1) * py + vy,
            vz,
        )
        # Smooth structured specimen: filtered noise, unit-ish contrast.
        raw = rng.standard_normal(specimen_shape)
        self.specimen = ndimage.gaussian_filter(raw, spec.smoothness)
        s = self.specimen
        self.specimen = (s - s.mean()) / (s.std() + 1e-12)

        n = gx * gy
        jitter = rng.integers(-m, m + 1, size=(n, 3))
        jitter[:, 2] = 0  # stacks share the z origin; jitter is in-plane
        jitter[0] = 0  # anchor volume
        self.true_offsets = jitter.astype(np.int64)
        self.volumes: list[np.ndarray] = []
        for cell in range(n):
            cx, cy = cell % gx, cell // gx
            nx0, ny0, nz0 = spec.nominal_position(cx, cy)
            tx0 = nx0 + int(jitter[cell, 0])
            ty0 = ny0 + int(jitter[cell, 1])
            crop = self.specimen[tx0 : tx0 + vx, ty0 : ty0 + vy, :vz].copy()
            crop += spec.noise * rng.standard_normal(crop.shape)
            self.volumes.append(crop)

    @property
    def n_volumes(self) -> int:
        """Number of volumes (``gx * gy``)."""
        return self.spec.gx * self.spec.gy

    def volume(self, cell: int) -> np.ndarray:
        """The acquired stack of linear cell index ``cell``."""
        return self.volumes[cell]

    def true_pairwise_offset(self, cell_a: int, cell_b: int) -> np.ndarray:
        """Ground-truth extra displacement of ``b`` relative to ``a``
        beyond the nominal pitch (what correlation should measure)."""
        return self.true_offsets[cell_b] - self.true_offsets[cell_a]
